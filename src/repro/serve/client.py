"""Blocking stdlib-socket clients for the line-JSON protocol.

These are the stable programmatic surface for talking to a frontend
(:class:`ReconstructClient`), a cluster coordinator or storage node
(:class:`ClusterClient`) — the typed replacement for the hand-rolled
``socket`` + ``json`` snippets tests and scripts used to carry around.

One TCP connection per client, one request/response in flight at a
time (a :class:`threading.Lock` serializes callers, so a client
instance is safe to share across threads).  Calls raise the most
faithful local exception for a remote failure via the protocol error
taxonomy — ``overloaded`` arrives as
:class:`~repro.serve.service.ServiceOverloadedError`, ``deadline`` as
:class:`~repro.serve.service.DeadlineExceededError`, ``data_loss`` as
:class:`~repro.storage.archive.DataLossError`, and so on — instead of
a stringly-typed error dict.

Tracing crosses the wire automatically: when tracing is active, each
call runs under a client span whose context rides in the request
frame, and span records shipped back by the server are ingested into
the local tracer — the client half of cluster-wide trace stitching.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from ..obs.trace import start_span, tracer
from ..resilience.retry import RetryPolicy
from .errors import DeadlineExceededError
from .protocol import (
    PROTOCOL_VERSION,
    AckResponse,
    BlockDataResponse,
    BlockDeleteRequest,
    BlockFetchRequest,
    BlockGetRequest,
    BlockListRequest,
    BlockMapResponse,
    BlockPutRequest,
    ClusterGetRequest,
    ClusterJoinRequest,
    ClusterLeaveRequest,
    ClusterMetricsRequest,
    ClusterPutRequest,
    ClusterRepairRequest,
    ClusterRepairStatusRequest,
    ClusterSnapshotRequest,
    ClusterStatusRequest,
    ErrorResponse,
    FetchStripeRequest,
    GetRequest,
    KeyListResponse,
    MetricsRequest,
    MetricsSnapshotResponse,
    NodeAdminRequest,
    NodeStatsRequest,
    ObjectInfoResponse,
    PingRequest,
    ProtocolError,
    Request,
    Response,
    SitesGetRequest,
    SitesMetricsRequest,
    SitesPutRequest,
    SitesRepairRequest,
    SitesStatusRequest,
    StatsRequest,
    StatusResponse,
    StripeBlocksResponse,
    encode_request,
    parse_response,
)

__all__ = [
    "ClusterClient",
    "ProtocolClient",
    "ReconstructClient",
    "SitesClient",
]


class ProtocolClient:
    """One blocking protocol connection; base for the typed clients."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        v: int = PROTOCOL_VERSION,
        retry: RetryPolicy | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.v = v
        self.retry = retry
        self._sock: socket.socket | None = None
        self._file = None
        self._lock = threading.Lock()
        self._next_id = 0

    # -- connection management -----------------------------------------

    def connect(self) -> "ProtocolClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ProtocolClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the one RPC primitive -----------------------------------------

    def call(self, request: Request) -> tuple[Response, dict[str, Any]]:
        """Send one request, wait for its reply, raise remote errors.

        Returns ``(typed response, raw frame)``; the raw frame carries
        envelope extras.  Remote failures raise (see module docs); a
        dropped connection raises :class:`ConnectionError` after
        closing the socket so the next call reconnects cleanly.  With
        a ``retry`` policy configured, connection-level failures
        (refused, reset, mid-frame close — *not* remote errors or
        deadlines) are retried with seeded backoff before raising.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(request)
            except DeadlineExceededError:
                raise
            except ConnectionError:
                if self.retry is None or not self.retry.wait(attempt):
                    raise
                attempt += 1

    def _call_once(
        self, request: Request
    ) -> tuple[Response, dict[str, Any]]:
        span = start_span(
            f"client.{request.op}",
            activate=False,
            target=f"{self.host}:{self.port}",
        )
        try:
            response, frame = self._exchange(request, span)
        except BaseException as exc:
            span.end(error=type(exc).__name__)
            raise
        span.end()
        t = tracer()
        if t is not None and frame.get("spans"):
            t.ingest(frame["spans"])
        if isinstance(response, ErrorResponse):
            response.raise_remote()
        return response, frame

    def _exchange(
        self, request: Request, span
    ) -> tuple[Response, dict[str, Any]]:
        with self._lock:
            self.connect()
            self._next_id += 1
            ctx = span.context() if span else None
            data = encode_request(
                request, v=self.v, request_id=self._next_id, trace=ctx
            )
            try:
                self._sock.sendall(data)
                line = self._file.readline()
            except socket.timeout as exc:
                # The peer accepted the request but never answered
                # (half-open or partitioned): surface the deadline,
                # not a hang.  The connection's framing state is
                # unknowable now, so drop it.
                self.close()
                raise DeadlineExceededError(
                    f"no reply from {self.host}:{self.port} within "
                    f"{self.timeout}s"
                ) from exc
            except OSError as exc:
                self.close()
                raise ConnectionError(
                    f"lost connection to {self.host}:{self.port}: {exc}"
                ) from exc
            if not line:
                self.close()
                raise ConnectionError(
                    f"{self.host}:{self.port} closed the connection"
                )
            if not line.endswith(b"\n"):
                # EOF mid-frame: a torn reply is not a reply.
                self.close()
                raise ConnectionError(
                    f"{self.host}:{self.port} closed mid-frame"
                )
        return parse_response(line)

    # -- conveniences shared by every endpoint -------------------------

    def ping(self) -> bool:
        response, _ = self.call(PingRequest())
        return getattr(response, "pong", False)

    def metrics(self) -> str:
        response, _ = self.call(MetricsRequest())
        return response.metrics

    @staticmethod
    def _expect(response: Response, cls: type) -> Any:
        if not isinstance(response, cls):
            raise ProtocolError(
                f"server answered with {response.kind!r}, "
                f"expected {cls.kind!r}"
            )
        return response


class ReconstructClient(ProtocolClient):
    """Typed client for the single-process reconstruction frontend."""

    def get(
        self, name: str, *, deadline: float | None = None
    ) -> ObjectInfoResponse:
        """Reconstruct ``name``; returns its size/digest record."""
        response, _ = self.call(GetRequest(name=name, deadline=deadline))
        return self._expect(response, ObjectInfoResponse)

    def stats(self) -> dict[str, Any]:
        response, _ = self.call(StatsRequest())
        return response.stats


class ClusterClient(ProtocolClient):
    """Typed client for a cluster coordinator (and its storage nodes).

    The object-level calls (:meth:`put`, :meth:`get`, :meth:`status`,
    :meth:`repair`, :meth:`join`, :meth:`leave`) target a coordinator;
    the block-level calls target a storage node directly — the same
    protocol serves both, so one client class covers both roles.
    """

    # -- coordinator object plane --------------------------------------

    def put(self, name: str, payload: bytes) -> dict[str, Any]:
        response, _ = self.call(
            ClusterPutRequest(name=name, payload=payload)
        )
        return self._expect(response, AckResponse).info

    def get(
        self, name: str, *, want_payload: bool = False
    ) -> ObjectInfoResponse:
        response, _ = self.call(
            ClusterGetRequest(name=name, want_payload=want_payload)
        )
        return self._expect(response, ObjectInfoResponse)

    def status(self) -> dict[str, Any]:
        response, _ = self.call(ClusterStatusRequest())
        return self._expect(response, StatusResponse).status

    def repair(self, mode: str = "drain") -> dict[str, Any]:
        response, _ = self.call(ClusterRepairRequest(mode=mode))
        return self._expect(response, AckResponse).info

    def repair_status(self) -> dict[str, Any]:
        response, _ = self.call(ClusterRepairStatusRequest())
        return self._expect(response, StatusResponse).status

    def snapshot(self) -> dict[str, Any]:
        """Ask the coordinator to snapshot its WAL state now."""
        response, _ = self.call(ClusterSnapshotRequest())
        return self._expect(response, AckResponse).info

    def join(self, node_id: str, host: str, port: int) -> dict[str, Any]:
        response, _ = self.call(
            ClusterJoinRequest(node_id=node_id, host=host, port=port)
        )
        return self._expect(response, AckResponse).info

    def leave(self, node_id: str) -> dict[str, Any]:
        response, _ = self.call(ClusterLeaveRequest(node_id=node_id))
        return self._expect(response, AckResponse).info

    def fetch_stripe(
        self, name: str, seq: int
    ) -> tuple[dict[int, bytes], int]:
        """Surviving raw blocks of stripe ordinal ``seq``.

        Returns ``(blocks by graph-node index, payload_length)`` —
        the federation gateway's coupled-decode primitive.
        """
        response, _ = self.call(FetchStripeRequest(name=name, seq=seq))
        got = self._expect(response, StripeBlocksResponse)
        return (
            {int(k): v for k, v in (got.blocks or {}).items()},
            got.payload_length,
        )

    # -- storage-node block plane --------------------------------------

    def block_put(self, key: str, data: bytes) -> None:
        self.call(BlockPutRequest(key=key, data=data))

    def block_get(self, key: str) -> bytes:
        response, _ = self.call(BlockGetRequest(key=key))
        return self._expect(response, BlockDataResponse).data

    def block_fetch(
        self, keys: tuple[str, ...]
    ) -> tuple[dict[str, bytes], tuple[str, ...]]:
        response, _ = self.call(BlockFetchRequest(keys=tuple(keys)))
        got = self._expect(response, BlockMapResponse)
        return dict(got.blocks or {}), got.missing

    def block_delete(self, key: str) -> bool:
        response, _ = self.call(BlockDeleteRequest(key=key))
        return bool(self._expect(response, AckResponse).info["deleted"])

    def block_list(self, prefix: str = "") -> tuple[str, ...]:
        response, _ = self.call(BlockListRequest(prefix=prefix))
        return self._expect(response, KeyListResponse).keys

    def node_stats(self) -> dict[str, Any]:
        response, _ = self.call(NodeStatsRequest())
        return response.stats

    def node_admin(
        self, action: str, *, delay_seconds: float | None = None
    ) -> dict[str, Any]:
        response, _ = self.call(
            NodeAdminRequest(action=action, delay_seconds=delay_seconds)
        )
        return self._expect(response, AckResponse).info

    def metrics_snapshot(self) -> MetricsSnapshotResponse:
        """Structured registry snapshot (coordinator or node scrape)."""
        response, _ = self.call(ClusterMetricsRequest())
        return self._expect(response, MetricsSnapshotResponse)


class SitesClient(ProtocolClient):
    """Typed client for a federation gateway (``sites.*`` ops)."""

    def put(self, name: str, payload: bytes) -> dict[str, Any]:
        response, _ = self.call(
            SitesPutRequest(name=name, payload=payload)
        )
        return self._expect(response, AckResponse).info

    def get(
        self, name: str, *, want_payload: bool = False
    ) -> ObjectInfoResponse:
        response, _ = self.call(
            SitesGetRequest(name=name, want_payload=want_payload)
        )
        return self._expect(response, ObjectInfoResponse)

    def status(self) -> dict[str, Any]:
        response, _ = self.call(SitesStatusRequest())
        return self._expect(response, StatusResponse).status

    def repair(self, mode: str = "drain") -> dict[str, Any]:
        response, _ = self.call(SitesRepairRequest(mode=mode))
        return self._expect(response, AckResponse).info

    def metrics_snapshot(self) -> MetricsSnapshotResponse:
        """Structured registry snapshot (gateway scrape)."""
        response, _ = self.call(SitesMetricsRequest())
        return self._expect(response, MetricsSnapshotResponse)
