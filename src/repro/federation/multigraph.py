"""Multi-graph federated archival storage (paper §5.3, Table 7).

Two (or more) sites replicate the same 48 data blocks, each protecting
them with its *own* Tornado Code graph.  Decoding couples the sites:
each site peels with its surviving local blocks, recovered data blocks
are exchanged, and peeling resumes — "restoring just one critical data
node allows the data graph to be reconstructed even when both graphs
cannot independently perform the reconstruction".

First-failure search follows the paper's methodology: brute force over
192+ devices is hopeless, so candidate loss patterns are *constructed
from the known failure cases* of the component graphs — the minimal bad
stopping sets that the worst-case analysis already produced.  A joint
failure needs some data node unrecoverable at every site
simultaneously, so candidates pair per-data-node critical sets across
sites; the reported number is a detected first failure, exactly as in
the paper's Table 7 ("First Failure Detected").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from ..core.critical import minimal_bad_stopping_sets
from ..core.decoder import PeelingDecoder
from ..core.graph import ErasureGraph

__all__ = [
    "FederatedSystem",
    "FederatedDecodeResult",
    "federated_first_failure",
]


@dataclass(frozen=True)
class FederatedDecodeResult:
    """Outcome of a coupled multi-site decode."""

    success: bool
    lost_data: frozenset[int]
    rounds: int
    recovered_per_site: tuple[int, ...]


class FederatedSystem:
    """Sites replicating the same data under different erasure graphs.

    All site graphs must share the data-node id convention (data nodes
    ``0..num_data-1`` are the same logical blocks at every site).
    Device ids are global: site ``s`` owns devices
    ``[s * num_nodes, (s+1) * num_nodes)``.
    """

    def __init__(self, graphs: Sequence[ErasureGraph]):
        if len(graphs) < 2:
            raise ValueError("federation needs at least two sites")
        first = graphs[0]
        for g in graphs[1:]:
            if g.data_nodes != first.data_nodes:
                raise ValueError("sites must share the data-node layout")
            if g.num_nodes != first.num_nodes:
                raise ValueError("sites must have equal device counts")
        self.graphs = tuple(graphs)
        self.num_sites = len(graphs)
        self.nodes_per_site = first.num_nodes
        self.data_nodes = first.data_nodes
        self._decoders = [PeelingDecoder(g) for g in graphs]

    @property
    def num_devices(self) -> int:
        return self.num_sites * self.nodes_per_site

    # ------------------------------------------------------------------

    def site_of(self, device: int) -> tuple[int, int]:
        """Map a global device id to (site, local node id)."""
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range")
        return divmod(device, self.nodes_per_site)

    def decode(self, missing_devices: Iterable[int]) -> FederatedDecodeResult:
        """Coupled decode with cross-site data-block exchange.

        Iterates site-local peeling and data exchange to fixpoint; at
        most ``num_sites * num_data`` rounds, in practice two or three.
        """
        per_site_missing: list[set[int]] = [
            set() for _ in range(self.num_sites)
        ]
        for dev in missing_devices:
            site, local = self.site_of(dev)
            per_site_missing[site].add(local)

        known_data: set[int] = set()
        # Data nodes already online somewhere need no decoding at all.
        for site in range(self.num_sites):
            for d in self.data_nodes:
                if d not in per_site_missing[site]:
                    known_data.add(d)

        recovered_counts = [0] * self.num_sites
        rounds = 0
        while True:
            rounds += 1
            progressed = False
            for site, decoder in enumerate(self._decoders):
                # A data block recovered anywhere is available here too.
                effective_missing = {
                    m
                    for m in per_site_missing[site]
                    if m not in known_data
                }
                result = decoder.decode(effective_missing)
                # Everything not in the residual is known after peeling.
                solved_data = {
                    d
                    for d in self.data_nodes
                    if d not in known_data and d not in result.residual
                }
                if solved_data:
                    known_data.update(solved_data)
                    recovered_counts[site] += len(solved_data)
                    progressed = True
            if not progressed:
                break

        lost = frozenset(set(self.data_nodes) - known_data)
        return FederatedDecodeResult(
            success=not lost,
            lost_data=lost,
            rounds=rounds,
            recovered_per_site=tuple(recovered_counts),
        )

    def is_recoverable(self, missing_devices: Iterable[int]) -> bool:
        return self.decode(missing_devices).success


@lru_cache(maxsize=32)
def _signature_catalog(
    graph: ErasureGraph, max_size: int
) -> dict[frozenset[int], frozenset[int]]:
    """Smallest critical set per *data signature*, within ``max_size``.

    The data signature of a critical set is the set of data nodes it
    makes unrecoverable.  Cached per (graph, bound): federated pair
    studies reuse each graph across several pairings, and the
    stopping-set enumeration is the expensive part.
    """
    data = set(graph.data_nodes)
    best: dict[frozenset[int], frozenset[int]] = {}
    for s in minimal_bad_stopping_sets(graph, max_size=max_size):
        sig = frozenset(s & data)
        if sig not in best or len(s) < len(best[sig]):
            best[sig] = s
    return best


def federated_first_failure(
    system: FederatedSystem,
    *,
    site_max_size: int = 8,
    verify_budget: int = 20_000,
) -> tuple[int, tuple[int, ...]] | None:
    """Detected first failure of a two-site federation (paper Table 7).

    As in the paper, candidates come from the component graphs' known
    failure cases rather than brute force over 192 devices: each site's
    minimal critical sets (up to ``site_max_size``) are grouped by data
    signature, and a candidate loses one critical set at each site.

    Joint recovery dynamics prune the pairing:

    * **Equal signatures** are guaranteed joint failures — each site is
      stuck on exactly the data nodes the other site also lost, so the
      exchange has nothing to offer.
    * **Overlapping signatures** may or may not fail after exchange, so
      they are verified through the coupled decoder (smallest first,
      bounded by ``verify_budget`` decodes).
    * Disjoint signatures always recover (each site's stuck data is
      supplied by the other) and are skipped.

    Returns ``(device_count, device_ids)`` for the smallest detected
    failure, or ``None`` within the bound.  Like the paper's Table 7,
    this is a *detected* first failure — an upper bound on the truth.
    """
    if system.num_sites != 2:
        raise ValueError(
            "seeded first-failure search is defined for two sites"
        )
    cat_a = _signature_catalog(system.graphs[0], site_max_size)
    cat_b = _signature_catalog(system.graphs[1], site_max_size)

    # Index signatures by data node for overlap pairing.
    by_node_b: dict[int, list[frozenset[int]]] = {}
    for sig in cat_b:
        for d in sig:
            by_node_b.setdefault(d, []).append(sig)

    seen_pairs: set[tuple[frozenset[int], frozenset[int]]] = set()
    guaranteed: list[tuple[int, frozenset[int], frozenset[int]]] = []
    to_verify: list[tuple[int, frozenset[int], frozenset[int]]] = []
    for sig_a, set_a in cat_a.items():
        partners = {
            sig_b for d in sig_a for sig_b in by_node_b.get(d, ())
        }
        for sig_b in partners:
            key = (sig_a, sig_b)
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            set_b = cat_b[sig_b]
            total = len(set_a) + len(set_b)
            if sig_a == sig_b:
                guaranteed.append((total, set_a, set_b))
            else:
                to_verify.append((total, set_a, set_b))

    best_guaranteed = min(guaranteed, default=None)

    def devices_of(set_a: frozenset[int], set_b: frozenset[int]):
        n = system.nodes_per_site
        return tuple(sorted(list(set_a) + [n + x for x in set_b]))

    # Verify overlapping pairs that could beat the guaranteed bound.
    bound = best_guaranteed[0] if best_guaranteed else 1 << 30
    to_verify.sort(key=lambda t: t[0])
    checked = 0
    for total, set_a, set_b in to_verify:
        if total >= bound or checked >= verify_budget:
            break
        checked += 1
        devices = devices_of(set_a, set_b)
        if not system.is_recoverable(devices):
            return total, devices

    if best_guaranteed is not None:
        total, set_a, set_b = best_guaranteed
        return total, devices_of(set_a, set_b)
    return None
