"""Federated multi-site archival storage with complementary graphs."""

from .multigraph import (
    FederatedDecodeResult,
    FederatedSystem,
    federated_first_failure,
)

from .selection import PairingScore, SelectionReport, select_complementary_pair
from .profile import federated_batch_decoder, federated_profile

__all__ = [
    "PairingScore",
    "SelectionReport",
    "select_complementary_pair",
    "federated_profile",
    "federated_batch_decoder",
    "FederatedDecodeResult",
    "FederatedSystem",
    "federated_first_failure",
]
