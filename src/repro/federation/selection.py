"""Cooperative graph selection for federated deployments.

The paper's abstract proposes "cooperatively selected Tornado Code
graphs" — sites choosing *which* certified graphs to deploy so the
federation's joint fault tolerance is maximised.  Table 7 shows why:
pairings of the same three graphs differ (17 vs 19 detected first
failure) because joint failure requires critical sets with identical
data signatures at both sites.

This module automates the choice: score every pairing of a candidate
pool by its detected first failure (and, as a tie-breaker, its sampled
mid-curve failure fraction) and return the best assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from ..core.graph import ErasureGraph
from .multigraph import FederatedSystem, federated_first_failure
from .profile import federated_profile

__all__ = ["PairingScore", "SelectionReport", "select_complementary_pair"]


@dataclass(frozen=True)
class PairingScore:
    """Evaluation of one two-site graph pairing."""

    graph_a: str
    graph_b: str
    detected_first_failure: int | None  # None: none found within bound
    mid_curve_fail: float

    @property
    def sort_key(self) -> tuple[float, float]:
        """Higher is better: first failure (unbounded best), then curve."""
        ff = (
            float(self.detected_first_failure)
            if self.detected_first_failure is not None
            else float("inf")
        )
        return (ff, -self.mid_curve_fail)


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of a cooperative selection run."""

    best: PairingScore
    ranking: tuple[PairingScore, ...]

    def describe(self) -> str:
        lines = ["pairing ranking (best first):"]
        for score in self.ranking:
            ff = (
                score.detected_first_failure
                if score.detected_first_failure is not None
                else "none detected"
            )
            lines.append(
                f"  {score.graph_a} + {score.graph_b}: "
                f"first failure {ff}, mid-curve fail "
                f"{score.mid_curve_fail:.4f}"
            )
        return "\n".join(lines)


def select_complementary_pair(
    graphs: Sequence[ErasureGraph],
    *,
    site_max_size: int = 7,
    curve_samples: int = 1_000,
    curve_k: int | None = None,
    allow_duplicates: bool = False,
    seed: int = 0,
) -> SelectionReport:
    """Choose the best two-site pairing from a certified-graph pool.

    Each unordered pairing is scored by its detected first failure
    (seeded critical-set search, see
    :func:`repro.federation.federated_first_failure`) with a sampled
    mid-transition failure fraction as tie-breaker.  Set
    ``allow_duplicates`` to include same-graph-twice pairings (the
    paper's Table 7 baseline).
    """
    if len(graphs) < 2:
        raise ValueError("need at least two candidate graphs")
    pairs = list(combinations(range(len(graphs)), 2))
    if allow_duplicates:
        pairs += [(i, i) for i in range(len(graphs))]

    scores: list[PairingScore] = []
    for i, j in pairs:
        system = FederatedSystem([graphs[i], graphs[j]])
        hit = federated_first_failure(
            system, site_max_size=site_max_size
        )
        k = curve_k if curve_k is not None else system.num_devices // 2
        prof = federated_profile(
            system,
            samples_per_k=curve_samples,
            seed=seed,
            ks=[k],
            name=f"{graphs[i].name}+{graphs[j].name}",
        )
        scores.append(
            PairingScore(
                graph_a=graphs[i].name,
                graph_b=graphs[j].name,
                detected_first_failure=hit[0] if hit else None,
                mid_curve_fail=float(prof.fail_fraction[k]),
            )
        )

    ranking = tuple(
        sorted(scores, key=lambda s: s.sort_key, reverse=True)
    )
    return SelectionReport(best=ranking[0], ranking=ranking)
