"""Monte Carlo failure profiles of federated systems (Table 7 extended).

The paper reports only the *detected first failure* of federated
configurations; this module extends the analysis to the full
fraction-failure curve, putting multi-site systems on the same axes as
the single-site Figures 3–6.

Vectorisation trick: the coupled two-site decode is itself a peeling
system.  Stack both sites' constraints over a 2x96-node space and add
one *equality relation* per logical data block — the block's copy at
site A, the copy at site B — because replicas of the same value let
either side recover the other.  Peeling that combined relation set to a
fixpoint is exactly the iterated decode-exchange-decode loop of
:class:`repro.federation.FederatedSystem`, so the batch matmul decoder
applies unchanged (the equivalence is asserted in the tests).
"""

from __future__ import annotations

import numpy as np

from ..core.bitdecoder import (
    BitsetBatchDecoder,
    packed_random_loss_masks,
)
from ..core.decoder import (
    BatchPeelingDecoder,
    make_batch_decoder_from_matrix,
)
from ..obs.seeding import SeedLike, resolve_rng
from ..sim.results import FailureProfile
from .multigraph import FederatedSystem

__all__ = ["federated_batch_decoder", "federated_profile"]


def federated_batch_decoder(
    system: FederatedSystem, engine: str = "auto"
) -> BatchPeelingDecoder | BitsetBatchDecoder:
    """Batch decoder over the combined multi-site relation system.

    ``engine`` selects the decode kernel for the stacked relation
    matrix (see :func:`repro.core.decoder.make_batch_decoder_from_matrix`).
    """
    n = system.nodes_per_site
    total = system.num_devices
    rows: list[np.ndarray] = []
    for site, graph in enumerate(system.graphs):
        base = site * n
        for con in graph.constraints:
            row = np.zeros(total, dtype=np.float32)
            for m in con.members():
                row[base + m] = 1.0
            rows.append(row)
    # Equality relations: every pair of sites sharing a data block.
    for d in system.data_nodes:
        for site_a in range(system.num_sites - 1):
            row = np.zeros(total, dtype=np.float32)
            row[site_a * n + d] = 1.0
            row[(site_a + 1) * n + d] = 1.0
            rows.append(row)
    membership = np.stack(rows)
    # Success = every logical block known somewhere; with the equality
    # relations, "site 0's copy is known" captures exactly that.
    return make_batch_decoder_from_matrix(
        membership, system.data_nodes, total, engine=engine
    )


def federated_profile(
    system: FederatedSystem,
    *,
    samples_per_k: int = 4_000,
    seed: SeedLike = 0,
    ks: list[int] | None = None,
    name: str | None = None,
    engine: str = "auto",
) -> FailureProfile:
    """Sampled ``P(data loss | k devices offline)`` for a federation.

    No exact small-``k`` head is spliced in (the joint critical-set
    counting problem is open here); use
    :func:`repro.federation.federated_first_failure` for the worst-case
    boundary.  ``engine`` picks the batch decode kernel; both engines
    consume the same RNG stream and give identical profiles per seed.
    """
    decoder = federated_batch_decoder(system, engine=engine)
    packed_path = hasattr(decoder, "decode_packed")
    n = system.num_devices
    fail = np.zeros(n + 1, dtype=float)
    samples = np.zeros(n + 1, dtype=np.int64)
    fail[n] = 1.0

    rng = resolve_rng(seed)
    sample_ks = list(ks) if ks is not None else list(range(1, n))
    for k in sample_ks:
        if not 0 < k < n:
            continue
        if packed_path:
            packed = packed_random_loss_masks(n, k, samples_per_k, rng)
            ok = decoder.decode_packed(packed, samples_per_k)
        else:
            scores = rng.random((samples_per_k, n))
            idx = np.argpartition(scores, k - 1, axis=1)[:, :k]
            masks = np.zeros((samples_per_k, n), dtype=bool)
            rows = np.repeat(np.arange(samples_per_k), k)
            masks[rows, idx.ravel()] = True
            ok = decoder.decode_batch(masks)
        fail[k] = 1.0 - ok.mean()
        samples[k] = samples_per_k

    if ks is not None:
        known = np.union1d(np.flatnonzero(samples > 0), [0, n])
        fail = np.interp(np.arange(n + 1), known, fail[known])

    return FailureProfile(
        system_name=name
        or " + ".join(g.name for g in system.graphs),
        num_devices=n,
        num_data=len(system.data_nodes),
        fail_fraction=np.clip(fail, 0.0, 1.0),
        samples=samples,
    )
