"""Storage-node logic: block store, availability process, ship-back."""

import asyncio
import json

import pytest

from repro.cluster import StorageNode, start_storage_node
from repro.resilience import FaultPlan
from repro.resilience.faults import TransientOutages
from repro.serve.protocol import (
    BlockFetchRequest,
    BlockGetRequest,
    BlockListRequest,
    BlockPutRequest,
    NodeStatsRequest,
    PingRequest,
)
from repro.storage.device import TransientUnavailableError


class TestStorageNodeLogic:
    def test_block_ops_round_trip(self):
        node = StorageNode("n0")
        node.handle(BlockPutRequest(key="a/0/0", data=b"xy"))
        got = node.handle(BlockGetRequest(key="a/0/0"))
        assert got.data == b"xy"
        fetched = node.handle(
            BlockFetchRequest(keys=("a/0/0", "a/0/1"))
        )
        assert fetched.blocks == {"a/0/0": b"xy"}
        assert fetched.missing == ("a/0/1",)
        listed = node.handle(BlockListRequest(prefix="a/"))
        assert listed.keys == ("a/0/0",)

    def test_interrupt_gates_data_plane_not_control_plane(self):
        node = StorageNode("n0")
        node.handle(BlockPutRequest(key="k", data=b"v"))
        node.interrupt(steps=2)
        with pytest.raises(TransientUnavailableError):
            node.handle(BlockGetRequest(key="k"))
        # Control plane answers during the outage.
        assert node.handle(PingRequest()).pong is True
        stats = node.handle(NodeStatsRequest()).stats
        assert stats["available"] is False
        assert stats["outage_remaining"] == 2
        # Stepping through the outage restores availability.
        assert node.step() is False
        assert node.step() is True
        assert node.handle(BlockGetRequest(key="k")).data == b"v"

    def test_fault_plan_drives_outages_deterministically(self):
        plan = FaultPlan(
            faults=(TransientOutages(rate=1.0, mean_outage_steps=3),)
        )
        a = StorageNode("n0", seed=7, fault_plan=plan)
        b = StorageNode("n0", seed=7, fault_plan=plan)
        trace_a = [a.step() for _ in range(50)]
        trace_b = [b.step() for _ in range(50)]
        assert trace_a == trace_b
        assert a.outages_drawn > 0
        assert not all(trace_a)  # rate=1.0 must actually go dark

    def test_non_transient_fault_specs_are_ignored(self):
        # Block-level faults belong to the device layer; a node keeps
        # only the availability specs of a mixed plan.
        plan = FaultPlan(faults=())
        node = StorageNode("n0", fault_plan=plan)
        assert all(node.step() for _ in range(20))

    def test_rejects_empty_node_id(self):
        with pytest.raises(ValueError):
            StorageNode("")


class TestStorageNodeServer:
    def test_trace_context_ships_spans_back(self):
        async def run():
            node = StorageNode("n0", seed=3)
            server = await start_storage_node(node, port=0)
            try:
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                frame = {
                    "v": 1,
                    "id": 1,
                    "op": "block.put",
                    "key": "k",
                    "data": "eA==",
                    "trace": {"trace_id": "t" * 16, "span_id": "s" * 16},
                }
                writer.write(json.dumps(frame).encode() + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return reply

        reply = asyncio.run(run())
        assert reply["ok"] is True
        spans = reply["spans"]
        assert len(spans) == 1
        # The shipped span parents under the caller's context, in the
        # caller's trace — that is what stitches the cluster-wide tree.
        assert spans[0]["name"] == "node.block.put"
        assert spans[0]["trace_id"] == "t" * 16
        assert spans[0]["parent_id"] == "s" * 16

    def test_untraced_request_ships_no_spans(self):
        async def run():
            node = StorageNode("n0")
            server = await start_storage_node(node, port=0)
            try:
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(
                    host, port
                )
                writer.write(b'{"v": 1, "op": "ping"}\n')
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return reply

        reply = asyncio.run(run())
        assert reply["ok"] is True
        assert "spans" not in reply


class TestMetricsPlane:
    def test_metrics_snapshot_dispatch(self):
        from repro.serve.protocol import (
            ClusterMetricsRequest,
            MetricsSnapshotResponse,
        )

        node = StorageNode("n7")
        node.handle(BlockPutRequest(key="a/0/0", data=b"xyzw"))
        response = node.handle(ClusterMetricsRequest())
        assert isinstance(response, MetricsSnapshotResponse)
        assert response.role == "node"
        assert response.source == "n7"
        gauges = response.snapshot["gauges"]
        assert gauges["node.available"] == 1.0
        assert gauges["node.blocks"] == 1.0
        assert gauges["node.bytes_stored"] == 4.0
        assert response.snapshot["counters"]["node.puts"] == 1

    def test_metrics_served_from_the_control_plane(self):
        # A transiently-unavailable node refuses data-plane ops but
        # still reports itself — that is how the scraper tells a
        # dark process from a merely interrupted device.
        from repro.serve.protocol import ClusterMetricsRequest

        node = StorageNode("n8")
        node.interrupt()
        with pytest.raises(TransientUnavailableError):
            node.handle(BlockGetRequest(key="a/0/0"))
        response = node.handle(ClusterMetricsRequest())
        assert response.snapshot["gauges"]["node.available"] == 0.0
