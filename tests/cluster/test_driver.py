"""Multi-process cluster exercise via the CLI driver (slow-ish)."""

import json

from repro.cli import main


class TestClusterLoadgenCLI:
    def test_kill_repair_rejoin_zero_data_loss(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        trace_dir = tmp_path / "traces"
        code = main(
            [
                "cluster",
                "loadgen",
                "--nodes",
                "3",
                "--objects",
                "2",
                "--object-size",
                "2048",
                "--block-size",
                "256",
                "--requests",
                "10",
                "--rate",
                "500",
                "--seed",
                "0",
                "--trace-dir",
                str(trace_dir),
                "--obs-dir",
                str(tmp_path / "obs"),
                "--scrape-every",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "ZERO data loss" in text
        report = json.loads(out.read_text())
        assert report["data_loss"] is False
        assert report["failed"] == 0
        assert report["mismatched"] == 0
        assert report["killed_node"] == "node-0"
        assert report["rejoined"] is True
        assert report["verified_objects"] == report["objects"]
        # Cross-node repair traffic is first-class and non-zero.
        assert report["status"]["repair_bytes"] > 0
        assert report["repair"]["rebuilt_blocks"] > 0
        # The driver and coordinator both wrote trace files.
        driver = trace_dir / "driver.jsonl"
        coordinator = trace_dir / "coordinator.jsonl"
        assert driver.exists() and coordinator.exists()
        # Stitching both files yields an orphan-free cluster-wide tree.
        code = main(
            ["obs", "trace-tree", str(driver), str(coordinator)]
        )
        assert code == 0
        tree = capsys.readouterr().out
        assert "orphaned spans: none" in tree
        assert "client.cluster.get" in tree
        assert "node.block.fetch" in tree

    def test_telemetry_timeline_fires_and_clears(self, tmp_path, capsys):
        """The acceptance bar: kill -> alert fires -> heal -> clears,
        and the persisted timeline replays to the same fleet view."""
        out = tmp_path / "report.json"
        obs_dir = tmp_path / "obs"
        code = main(
            [
                "cluster",
                "loadgen",
                "--nodes",
                "3",
                "--objects",
                "2",
                "--object-size",
                "2048",
                "--block-size",
                "256",
                "--requests",
                "12",
                "--rate",
                "500",
                "--seed",
                "7",
                "--obs-dir",
                str(obs_dir),
                "--scrape-every",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        telemetry = report["telemetry"]
        assert telemetry["samples"] > 0
        assert telemetry["firing"] == []
        alerts = telemetry["alerts"]
        avail = [a for a in alerts if a["objective"] == "availability"]
        states = [a["state"] for a in avail]
        # The node kill fired the availability alert; the rejoin and
        # settle loop cleared every window again.
        assert "firing" in states
        assert states.count("ok") == states.count("firing")
        fired_at = min(
            a["ts"] for a in avail if a["state"] == "firing"
        )
        cleared_at = max(a["ts"] for a in avail if a["state"] == "ok")
        assert cleared_at > fired_at
        # Durability summary rode along with a real margin.
        assert telemetry["durability"]["score"] is not None

        timeline = telemetry["timeline"]
        assert timeline.endswith("timeline.jsonl")
        # Replay verbs agree with the live run: the dashboard renders
        # and a full (healed) timeline passes the SLO gate.
        assert main(["obs", "top", timeline, "--once"]) == 0
        top = capsys.readouterr().out
        assert "targets: 4/4 up" in top
        assert "alerts: none firing" in top
        assert main(["obs", "slo", "check", timeline]) == 0
        assert "slo check: ok" in capsys.readouterr().out

        # Truncating the timeline just past the first firing alert
        # leaves the engine mid-incident: the gate must fail.
        lines = (
            (obs_dir / "timeline.jsonl").read_text().splitlines()
        )
        cut = next(
            i
            for i, line in enumerate(lines)
            if '"slo.alert"' in line and '"firing"' in line
        )
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[: cut + 1]) + "\n")
        assert main(["obs", "slo", "check", str(partial)]) == 1
        assert "FIRING availability" in capsys.readouterr().out
