"""Multi-process cluster exercise via the CLI driver (slow-ish)."""

import json

from repro.cli import main


class TestClusterLoadgenCLI:
    def test_kill_repair_rejoin_zero_data_loss(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        trace_dir = tmp_path / "traces"
        code = main(
            [
                "cluster",
                "loadgen",
                "--nodes",
                "3",
                "--objects",
                "2",
                "--object-size",
                "2048",
                "--block-size",
                "256",
                "--requests",
                "10",
                "--rate",
                "500",
                "--seed",
                "0",
                "--trace-dir",
                str(trace_dir),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "ZERO data loss" in text
        report = json.loads(out.read_text())
        assert report["data_loss"] is False
        assert report["failed"] == 0
        assert report["mismatched"] == 0
        assert report["killed_node"] == "node-0"
        assert report["rejoined"] is True
        assert report["verified_objects"] == report["objects"]
        # Cross-node repair traffic is first-class and non-zero.
        assert report["status"]["repair_bytes"] > 0
        assert report["repair"]["rebuilt_blocks"] > 0
        # The driver and coordinator both wrote trace files.
        driver = trace_dir / "driver.jsonl"
        coordinator = trace_dir / "coordinator.jsonl"
        assert driver.exists() and coordinator.exists()
        # Stitching both files yields an orphan-free cluster-wide tree.
        code = main(
            ["obs", "trace-tree", str(driver), str(coordinator)]
        )
        assert code == 0
        tree = capsys.readouterr().out
        assert "orphaned spans: none" in tree
        assert "client.cluster.get" in tree
        assert "node.block.fetch" in tree
