"""Coordinator end-to-end: placement, degraded reads, repair, traces."""

import asyncio
import hashlib

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, StorageNode, start_storage_node
from repro.cluster.coordinator import start_coordinator
from repro.graphs import tornado_catalog_graph
from repro.obs.trace import Tracer, trace_capture
from repro.serve.client import ClusterClient
from repro.serve.plancache import PlanCache
from repro.storage.device import TransientUnavailableError


def catalog_graph():
    return tornado_catalog_graph(3)  # 96 graph nodes, 48 data


class Cluster:
    """An in-process coordinator plus N served storage nodes."""

    def __init__(self, coordinator, nodes, servers):
        self.coordinator = coordinator
        self.nodes = nodes
        self.servers = servers

    @classmethod
    async def start(cls, members=3, block_size=64):
        coordinator = ClusterCoordinator(
            catalog_graph(), block_size=block_size
        )
        nodes, servers = {}, {}
        for i in range(members):
            node_id = f"node-{i}"
            node = StorageNode(node_id, seed=i)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            await coordinator.register(node_id, host, port)
            nodes[node_id], servers[node_id] = node, server
        return cls(coordinator, nodes, servers)

    async def kill(self, node_id):
        """SIGKILL analogue: server gone, connection dropped."""
        self.servers[node_id].close()
        await self.servers[node_id].wait_closed()
        self.coordinator._drop_connection(
            self.coordinator.nodes[node_id]
        )

    async def close(self):
        for server in self.servers.values():
            server.close()


def run(coro):
    return asyncio.run(coro)


def payload_bytes(n, seed=0):
    return np.random.default_rng(seed).bytes(n)


class TestPlacement:
    def test_stripe_placement_is_a_rotation_of_the_membership(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            placement = coord._stripe_placement("obj", 0)
            members = coord.ring.members
            assert len(placement) == coord.graph.num_nodes
            anchor = members.index(placement[0])
            for j, node_id in enumerate(placement):
                assert node_id == members[(anchor + j) % len(members)]
            await cluster.close()

        run(check())

    def test_single_node_loss_is_always_decodable(self):
        # The certified property behind striding: for any membership
        # size >= 3 and any anchor, losing one member erases a strided
        # mask the catalog graph decodes.
        graph = catalog_graph()
        plans = PlanCache(64)
        for members in (3, 4, 5):
            for lost in range(members):
                for anchor in range(members):
                    missing = [
                        j
                        for j in range(graph.num_nodes)
                        if (anchor + j) % members == lost
                    ]
                    assert plans.schedule(
                        graph, missing
                    ).success, (members, lost, anchor)

    def test_put_records_placement_in_manifest(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(2000))
            manifest = coord.manifests["obj"]
            for record in manifest.stripes:
                assert record.placement == coord._stripe_placement(
                    "obj", record.index
                )
            await cluster.close()

        run(check())


class TestEndToEnd:
    def test_put_get_round_trip(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(12800)
            info = await coord.put("obj", payload)
            assert info["failed_blocks"] == 0
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            assert (
                got.sha256 == hashlib.sha256(payload).hexdigest()
            )
            await cluster.close()

        run(check())

    def test_degraded_read_with_one_node_dead(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(9000, seed=1)
            await coord.put("obj", payload)
            await cluster.kill("node-0")
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            await cluster.close()

        run(check())

    def test_transient_outage_decodes_around_the_dark_node(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(5000, seed=2)
            await coord.put("obj", payload)
            cluster.nodes["node-1"].interrupt(steps=100)
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            # Blocks were never lost — restore and read again.
            cluster.nodes["node-1"].restore()
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            await cluster.close()

        run(check())

    def test_leave_rebuilds_lost_blocks_and_meters_bytes(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(12800, seed=3)
            await coord.put("obj", payload)
            await cluster.kill("node-0")
            summary = await coord.deregister("node-0")
            assert summary["rebuilt_blocks"] > 0
            assert summary["unrepairable_blocks"] == 0
            assert coord.repair_bytes > 0
            per_node = coord.repair_bytes_by_node
            assert set(per_node) <= {"node-1", "node-2"}
            assert sum(per_node.values()) == coord.repair_bytes
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            status = await coord.status()
            assert status["repair_bytes"] == coord.repair_bytes
            await cluster.close()

        run(check())

    def test_rejoin_re_shards_back_and_leaves_no_strays(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(12800, seed=4)
            await coord.put("obj", payload)
            await cluster.kill("node-0")
            await coord.deregister("node-0")
            # Fresh empty node under the old name rejoins.
            node = StorageNode("node-0", seed=9)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            cluster.nodes["node-0"] = node
            cluster.servers["node-0"] = server
            summary = await coord.register("node-0", host, port)
            assert summary["moved_blocks"] > 0
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            # Every block held exactly once cluster-wide, and the
            # manifests' recorded placement matches reality.
            holders = await coord._inventory()
            assert all(len(v) == 1 for v in holders.values())
            for record in coord.manifests["obj"].stripes:
                assert record.placement == coord._stripe_placement(
                    "obj", record.index
                )
            await cluster.close()

        run(check())

    def test_all_nodes_lost_is_unavailable_not_silence(self):
        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(1000, seed=5))
            for node_id in list(cluster.servers):
                await cluster.kill(node_id)
            with pytest.raises(TransientUnavailableError):
                await coord.get("obj")
            await cluster.close()

        run(check())

    def test_unknown_object_raises_key_error(self):
        async def check():
            cluster = await Cluster.start(members=3)
            with pytest.raises(KeyError):
                await cluster.coordinator.get("ghost")
            await cluster.close()

        run(check())


class TestServedCoordinator:
    def test_client_against_served_coordinator(self):
        async def serve_and_exercise():
            cluster = await Cluster.start(members=3)
            server = await start_coordinator(
                cluster.coordinator, port=0
            )
            host, port = server.sockets[0].getsockname()[:2]

            def exercise():
                payload = payload_bytes(4000, seed=6)
                with ClusterClient(host, port) as client:
                    info = client.put("obj", payload)
                    assert info["failed_blocks"] == 0
                    got = client.get("obj", want_payload=True)
                    assert got.payload == payload
                    status = client.status()
                    assert len(status["nodes"]) == 3
                    assert all(
                        entry["alive"]
                        for entry in status["nodes"].values()
                    )
                    repair = client.repair()
                    assert repair["unrepairable_blocks"] == 0

            await asyncio.to_thread(exercise)
            server.close()
            await cluster.close()

        run(serve_and_exercise())


class TestTraceStitching:
    def test_cluster_wide_span_tree_has_no_orphans(self):
        tracer = Tracer(seed=5)

        async def check():
            cluster = await Cluster.start(members=3)
            coord = cluster.coordinator
            payload = payload_bytes(3000, seed=7)
            await coord.put("obj", payload)
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            await cluster.close()

        with trace_capture(tracer):
            run(check())
        records = tracer.records
        by_id = {r["span_id"]: r for r in records}
        names = {r["name"] for r in records}
        # Coordinator RPC spans and shipped node spans both landed.
        assert any(n.startswith("cluster.rpc.") for n in names)
        assert any(n.startswith("node.") for n in names)
        orphans = [
            r
            for r in records
            if r.get("parent_id") and r["parent_id"] not in by_id
        ]
        assert orphans == []
        # Node spans parent under the coordinator's RPC spans.
        for r in records:
            if r["name"].startswith("node."):
                parent = by_id[r["parent_id"]]
                assert parent["name"].startswith("cluster.rpc.")
                assert parent["trace_id"] == r["trace_id"]


class TestMetricsScrapePlane:
    def test_snapshot_and_legacy_metrics_over_the_wire(self):
        from repro.obs import MetricsRegistry, capture
        from repro.obs.prom import render_prometheus
        from repro.obs.registry import registry

        async def serve_and_scrape():
            cluster = await Cluster.start(members=3)
            await cluster.coordinator.put("obj", payload_bytes(4000))
            server = await start_coordinator(
                cluster.coordinator, port=0
            )
            host, port = server.sockets[0].getsockname()[:2]

            def scrape():
                with ClusterClient(host, port) as client:
                    snap = client.metrics_snapshot()
                    assert snap.role == "coordinator"
                    assert snap.source == "coordinator"
                    gauges = snap.snapshot["gauges"]
                    assert gauges["cluster.objects"] == 1.0
                    assert gauges["cluster.members"] == 3.0
                    assert gauges["cluster.repair.healthy_margin"] >= 1
                    # The legacy text op is untouched: same render a
                    # pre-snapshot Prometheus poller always saw.
                    text = client.metrics()
                    assert text == render_prometheus(
                        registry().snapshot()
                    )
                    assert "repro_cluster_put_blocks_total 192" in text

            await asyncio.to_thread(scrape)
            server.close()
            await cluster.close()

        with capture(MetricsRegistry()):
            run(serve_and_scrape())
