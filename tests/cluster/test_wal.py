"""Coordinator durability: WAL mechanics and crash recovery."""

import asyncio
import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    CoordinatorWal,
    StorageNode,
    WalCorruptError,
    start_storage_node,
)
from repro.graphs import tornado_catalog_graph


def run(coro):
    return asyncio.run(coro)


def payload_bytes(n, seed=0):
    return np.random.default_rng(seed).bytes(n)


class TestWalMechanics:
    def test_append_then_load_replays_in_order(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        for i in range(5):
            seq = wal.append({"type": "put", "name": f"o{i}"})
            assert seq == i + 1
        wal.close()
        state, records = CoordinatorWal(tmp_path).load()
        assert state is None
        assert [r["name"] for r in records] == [f"o{i}" for i in range(5)]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]

    def test_fresh_truncates_prior_state(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "old"})
        wal.snapshot({"anything": 1})
        wal.close()
        wal = CoordinatorWal(tmp_path, fresh=True)
        state, records = wal.load()
        assert state is None and records == []
        assert wal.seq == 0

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "kept"})
        wal.close()
        with open(tmp_path / "wal.jsonl", "ab") as fh:
            fh.write(b'{"seq": 2, "type": "put", "na')  # crash mid-write
        _, records = CoordinatorWal(tmp_path).load()
        assert [r["name"] for r in records] == ["kept"]

    def test_crc_failing_tail_is_dropped(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "kept"})
        wal.close()
        with open(tmp_path / "wal.jsonl", "ab") as fh:
            fh.write(b'{"seq": 2, "type": "put", "crc": 12345}\n')
        _, records = CoordinatorWal(tmp_path).load()
        assert [r["name"] for r in records] == ["kept"]

    def test_mid_log_damage_raises_instead_of_guessing(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "a"})
        wal.append({"type": "put", "name": "b"})
        wal.close()
        lines = (tmp_path / "wal.jsonl").read_bytes().splitlines()
        lines[0] = b'{"seq": 1, "garbage": true}'
        (tmp_path / "wal.jsonl").write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(WalCorruptError):
            CoordinatorWal(tmp_path).load()

    def test_sequence_regression_is_corruption(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "a"})
        wal.close()
        line = (tmp_path / "wal.jsonl").read_bytes()
        # Duplicate record 1 verbatim: same CRC, regressed sequence.
        (tmp_path / "wal.jsonl").write_bytes(line + line)
        with pytest.raises(WalCorruptError):
            CoordinatorWal(tmp_path).load()

    def test_snapshot_truncates_and_seq_stays_monotonic(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "a"})
        wal.append({"type": "put", "name": "b"})
        assert wal.snapshot({"x": 1}) == 2
        assert wal.records_since_snapshot == 0
        assert wal.append({"type": "put", "name": "c"}) == 3
        wal.close()
        state, records = CoordinatorWal(tmp_path).load()
        assert state == {"x": 1}
        assert [r["name"] for r in records] == ["c"]

    def test_stats_report_recovery_exposure(self, tmp_path):
        wal = CoordinatorWal(tmp_path)
        wal.append({"type": "put", "name": "a"})
        stats = wal.stats()
        assert stats["seq"] == 1
        assert stats["records_since_snapshot"] == 1
        assert stats["wal_bytes"] > 0
        assert stats["appends"] == 1 and stats["fsyncs"] == 1
        assert stats["last_snapshot_age_seconds"] is None
        wal.snapshot({"x": 1})
        stats = wal.stats()
        assert stats["records_since_snapshot"] == 0
        assert stats["snapshot_bytes"] > 0
        assert stats["last_snapshot_age_seconds"] is not None


class WaledCluster:
    """In-process cluster whose coordinator journals to a WAL dir."""

    def __init__(self, coordinator, nodes, servers):
        self.coordinator = coordinator
        self.nodes = nodes
        self.servers = servers

    @classmethod
    async def start(cls, wal_dir, members=3, **kwargs):
        coordinator = ClusterCoordinator(
            tornado_catalog_graph(3),
            block_size=64,
            wal_dir=wal_dir,
            **kwargs,
        )
        nodes, servers = {}, {}
        for i in range(members):
            node_id = f"node-{i}"
            node = StorageNode(node_id, seed=i)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            await coordinator.register(node_id, host, port)
            nodes[node_id], servers[node_id] = node, server
        return cls(coordinator, nodes, servers)

    async def kill(self, node_id):
        self.servers[node_id].close()
        await self.servers[node_id].wait_closed()
        self.coordinator._drop_connection(
            self.coordinator.nodes[node_id]
        )

    async def close(self):
        if self.coordinator.wal is not None:
            self.coordinator.wal.close()
        for server in self.servers.values():
            server.close()


class TestCoordinatorRecovery:
    def test_recovery_reconstructs_byte_identical_state(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(tmp_path)
            coord = cluster.coordinator
            await coord.put("alpha", payload_bytes(5000, seed=1))
            await coord.put("beta", payload_bytes(3000, seed=2))
            await cluster.kill("node-0")
            await coord.deregister("node-0")
            digest = coord.state_sha256()
            state = coord.state_dict()
            await cluster.close()
            # "Crash": the coordinator object is simply gone.  A new
            # one recovers from the same directory.
            recovered = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                wal_dir=tmp_path,
                recover=True,
            )
            assert recovered.state_sha256() == digest
            assert recovered.state_dict() == state
            assert recovered.repair_bytes == coord.repair_bytes
            assert (
                recovered.repair_bytes_by_node
                == coord.repair_bytes_by_node
            )
            recovered.wal.close()

        run(check())

    def test_recovered_coordinator_serves_reads(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(tmp_path)
            coord = cluster.coordinator
            payload = payload_bytes(4000, seed=3)
            await coord.put("obj", payload)
            coord.wal.close()
            recovered = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                wal_dir=tmp_path,
                recover=True,
            )
            got = await recovered.get("obj", want_payload=True)
            assert got.payload == payload
            recovered.wal.close()
            for server in cluster.servers.values():
                server.close()

        run(check())

    def test_recovery_from_snapshot_plus_tail(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(tmp_path)
            coord = cluster.coordinator
            await coord.put("before", payload_bytes(1000, seed=4))
            coord.snapshot_now()
            await coord.put("after", payload_bytes(1000, seed=5))
            digest = coord.state_sha256()
            await cluster.close()
            recovered = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                wal_dir=tmp_path,
                recover=True,
            )
            assert recovered.state_sha256() == digest
            assert set(recovered.manifests) == {"before", "after"}
            recovered.wal.close()

        run(check())

    def test_auto_snapshot_after_n_records(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(
                tmp_path, snapshot_every=4
            )
            coord = cluster.coordinator
            for i in range(6):
                await coord.put(
                    f"o{i}", payload_bytes(200, seed=10 + i)
                )
            # 3 joins + 6 puts = 9 records: at least two snapshots
            # fired, and the journal tail stays short.
            assert coord.wal.records_since_snapshot < 4
            snapshot = json.loads(
                (tmp_path / "snapshot.json").read_text()
            )
            assert snapshot["seq"] > 0
            digest = coord.state_sha256()
            await cluster.close()
            recovered = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                wal_dir=tmp_path,
                recover=True,
            )
            assert recovered.state_sha256() == digest
            recovered.wal.close()

        run(check())

    def test_torn_put_record_is_an_unacked_put(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(tmp_path)
            coord = cluster.coordinator
            await coord.put("acked", payload_bytes(1000, seed=6))
            await cluster.close()
            # Simulate a crash mid-append of a second put.
            with open(tmp_path / "wal.jsonl", "ab") as fh:
                fh.write(b'{"seq": 99, "type": "put", "name": "torn')
            recovered = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                wal_dir=tmp_path,
                recover=True,
            )
            assert set(recovered.manifests) == {"acked"}
            recovered.wal.close()

        run(check())

    def test_status_surfaces_wal_and_state_digest(self, tmp_path):
        async def check():
            cluster = await WaledCluster.start(tmp_path)
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(500, seed=7))
            status = await coord.status()
            assert status["wal"]["seq"] == coord.wal.seq
            assert status["wal"]["records_since_snapshot"] > 0
            assert status["state_sha256"] == coord.state_sha256()
            await cluster.close()

        run(check())

    def test_wal_less_coordinator_reports_none_and_rejects_snapshot(
        self,
    ):
        coord = ClusterCoordinator(
            tornado_catalog_graph(3), block_size=64
        )
        with pytest.raises(ValueError):
            coord.snapshot_now()
