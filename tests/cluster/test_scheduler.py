"""RepairScheduler: priority ordering, budgets, read preemption."""

import asyncio
import time

import numpy as np

from repro.cluster import ClusterCoordinator, StorageNode, start_storage_node
from repro.graphs import tornado_catalog_graph
from repro.storage.blockstore import block_key


def run(coro):
    return asyncio.run(coro)


def payload_bytes(n, seed=0):
    return np.random.default_rng(seed).bytes(n)


class Cluster:
    def __init__(self, coordinator, nodes, servers):
        self.coordinator = coordinator
        self.nodes = nodes
        self.servers = servers

    @classmethod
    async def start(cls, members=3, block_size=64, **kwargs):
        coordinator = ClusterCoordinator(
            tornado_catalog_graph(3), block_size=block_size, **kwargs
        )
        nodes, servers = {}, {}
        for i in range(members):
            node_id = f"node-{i}"
            node = StorageNode(node_id, seed=i)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            await coordinator.register(node_id, host, port)
            nodes[node_id], servers[node_id] = node, server
        return cls(coordinator, nodes, servers)

    def delete_blocks(self, name, count, stripe_offset=0):
        """Erase the first ``count`` blocks of the object's stripe."""
        record = self.coordinator.manifests[name].stripes[stripe_offset]
        deleted = 0
        for node in range(self.coordinator.graph.num_nodes):
            if deleted == count:
                break
            key = block_key(name, record.index, node)
            for storage in self.nodes.values():
                if storage.store.delete(key):
                    deleted += 1
                    break
        assert deleted == count
        return record.index

    async def close(self):
        for server in self.servers.values():
            server.close()


class TestPriorityOrdering:
    def test_most_at_risk_stripe_queues_first(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            await coord.put("mild", payload_bytes(1000, seed=1))
            await coord.put("risky", payload_bytes(1000, seed=2))
            cluster.delete_blocks("mild", 1)
            cluster.delete_blocks("risky", 8)
            queued = await coord.scheduler.scan()
            assert queued == 2
            status = coord.scheduler.status()
            order = [e["object"] for e in status["next"]]
            assert order == ["risky", "mild"]
            # Margins reflect the missing-block counts.
            margins = {
                e["object"]: e["margin"] for e in status["next"]
            }
            assert margins["risky"] == margins["mild"] - 7
            await cluster.close()

        run(check())

    def test_scan_is_idempotent_and_healthy_scan_queues_nothing(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(1000, seed=3))
            assert await coord.scheduler.scan() == 0
            cluster.delete_blocks("obj", 2)
            assert await coord.scheduler.scan() == 1
            # Already queued: a second scan does not double-queue.
            assert await coord.scheduler.scan() == 0
            assert coord.scheduler.queue_depth == 1
            await cluster.close()

        run(check())


class TestBudget:
    def test_cycle_defers_work_beyond_the_byte_budget(self):
        async def check():
            # est_bytes per stripe = missing * block_size = 4 * 64.
            cluster = await Cluster.start(
                repair_bytes_per_cycle=300
            )
            coord = cluster.coordinator
            await coord.put("a", payload_bytes(1000, seed=4))
            await coord.put("b", payload_bytes(1000, seed=5))
            cluster.delete_blocks("a", 4)
            cluster.delete_blocks("b", 4)
            await coord.scheduler.scan()
            first = await coord.scheduler.run_cycle()
            # One stripe fits (256 <= 300); the second would overrun.
            assert first["repaired_stripes"] == 1
            assert first["deferred_stripes"] == 1
            assert first["spent_bytes"] == 256
            assert coord.scheduler.queue_depth == 1
            second = await coord.scheduler.run_cycle()
            assert second["repaired_stripes"] == 1
            assert second["deferred_stripes"] == 0
            assert coord.scheduler.queue_depth == 0
            await cluster.close()

        run(check())

    def test_oversized_stripe_still_repairs_for_progress(self):
        async def check():
            cluster = await Cluster.start(repair_bytes_per_cycle=1)
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(1000, seed=6))
            cluster.delete_blocks("obj", 4)
            summary = await coord.repair()
            assert summary["rebuilt_blocks"] == 4
            assert coord.scheduler.queue_depth == 0
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload_bytes(1000, seed=6)
            await cluster.close()

        run(check())

    def test_drain_totals_match_the_monolithic_contract(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            payload = payload_bytes(2000, seed=7)
            await coord.put("obj", payload)
            cluster.delete_blocks("obj", 3)
            summary = await coord.repair()
            for key in (
                "moved_blocks",
                "rebuilt_blocks",
                "unrepairable_blocks",
                "repaired_stripes",
                "spent_bytes",
                "cycles",
            ):
                assert key in summary
            assert summary["rebuilt_blocks"] == 3
            assert summary["unrepairable_blocks"] == 0
            assert coord.repair_bytes == summary["spent_bytes"]
            await cluster.close()

        run(check())


class TestReadInterleaving:
    def test_foreground_get_is_not_stalled_by_an_active_rebuild(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            payload = payload_bytes(6000, seed=8)  # many stripes
            await coord.put("obj", payload)
            for offset in range(len(coord.manifests["obj"].stripes)):
                cluster.delete_blocks("obj", 2, stripe_offset=offset)

            # Make each stripe's repair slow enough that a whole-pass
            # lock would be felt by a concurrent read.
            real = coord._repair_stripe

            async def slow_repair(*args, **kwargs):
                await asyncio.sleep(0.05)
                return await real(*args, **kwargs)

            coord._repair_stripe = slow_repair
            drain = asyncio.create_task(coord.repair())
            await asyncio.sleep(0.01)  # let the rebuild start
            t0 = time.perf_counter()
            got = await coord.get("obj", want_payload=True)
            read_latency = time.perf_counter() - t0
            assert got.payload == payload
            assert not drain.done()  # the rebuild was still running
            summary = await drain
            assert summary["rebuilt_blocks"] > 0
            # Regression bound: the read never waits for the whole
            # pass (which takes >= stripes * 50ms).
            stripes = len(coord.manifests["obj"].stripes)
            assert read_latency < 0.05 * stripes
            await cluster.close()

        run(check())

    def test_repair_waits_for_inflight_reads(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(500, seed=9))
            cluster.delete_blocks("obj", 1)
            await coord.scheduler.scan()
            coord.reads_inflight = 1

            async def release():
                await asyncio.sleep(0.02)
                coord.reads_inflight = 0

            releaser = asyncio.create_task(release())
            cycle = await coord.scheduler.run_cycle()
            await releaser
            assert cycle["repaired_stripes"] == 1
            assert coord.scheduler.preemptions >= 1
            await cluster.close()

        run(check())


class TestRepairStatusOp:
    def test_repair_modes_and_status_introspection(self):
        async def check():
            cluster = await Cluster.start()
            coord = cluster.coordinator
            await coord.put("obj", payload_bytes(800, seed=10))
            cluster.delete_blocks("obj", 2)
            scan = await coord.repair(mode="scan")
            assert scan["queued"] == 1 and scan["queue_depth"] == 1
            status = coord.repair_status()
            assert status["queue_depth"] == 1
            assert status["next"][0]["object"] == "obj"
            assert status["next"][0]["est_bytes"] == 128
            cycle = await coord.repair(mode="cycle")
            assert cycle["repaired_stripes"] == 1
            status = coord.repair_status()
            assert status["queue_depth"] == 0
            assert status["scans"] >= 1 and status["cycles"] >= 1
            assert status["totals"]["rebuilt_blocks"] == 2
            await cluster.close()

        run(check())
