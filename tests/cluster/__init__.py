"""Cluster subsystem tests."""
