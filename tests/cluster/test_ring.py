"""Consistent-hash ring: determinism, stability, spread."""

import pytest

from repro.cluster import HashRing


def ring_with(members):
    ring = HashRing()
    for member in members:
        ring.add(member)
    return ring


KEYS = [f"object-{i:03d}/{j}" for i in range(40) for j in range(5)]


class TestHashRing:
    def test_placement_is_independent_of_join_order(self):
        a = ring_with(["n0", "n1", "n2"])
        b = ring_with(["n2", "n0", "n1"])
        assert a.members == b.members == ("n0", "n1", "n2")
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_placement_survives_remove_and_readd(self):
        ring = ring_with(["n0", "n1", "n2"])
        before = [ring.owner(k) for k in KEYS]
        ring.remove("n1")
        ring.add("n1")
        assert [ring.owner(k) for k in KEYS] == before

    def test_member_loss_only_remaps_its_own_keys(self):
        ring = ring_with(["n0", "n1", "n2", "n3"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("n3")
        for key, owner in before.items():
            if owner != "n3":
                assert ring.owner(key) == owner
            else:
                assert ring.owner(key) in ("n0", "n1", "n2")

    def test_spread_is_reasonably_balanced(self):
        ring = ring_with([f"n{i}" for i in range(4)])
        histogram = ring.spread(KEYS)
        assert sum(histogram.values()) == len(KEYS)
        assert min(histogram.values()) > 0
        assert max(histogram.values()) / min(histogram.values()) < 3.0

    def test_empty_ring_refuses_lookup(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.owner("k")

    def test_len_and_contains(self):
        ring = ring_with(["n0", "n1"])
        assert len(ring) == 2
        assert "n0" in ring and "nx" not in ring
        ring.add("n0")  # idempotent
        assert len(ring) == 2

    def test_rejects_empty_node_id_and_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing().add("")
        with pytest.raises(ValueError):
            HashRing(replicas=0)
