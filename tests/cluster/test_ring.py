"""Consistent-hash ring: determinism, stability, spread."""

import pytest

from repro.cluster import HashRing


def ring_with(members):
    ring = HashRing()
    for member in members:
        ring.add(member)
    return ring


KEYS = [f"object-{i:03d}/{j}" for i in range(40) for j in range(5)]


class TestHashRing:
    def test_placement_is_independent_of_join_order(self):
        a = ring_with(["n0", "n1", "n2"])
        b = ring_with(["n2", "n0", "n1"])
        assert a.members == b.members == ("n0", "n1", "n2")
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_placement_survives_remove_and_readd(self):
        ring = ring_with(["n0", "n1", "n2"])
        before = [ring.owner(k) for k in KEYS]
        ring.remove("n1")
        ring.add("n1")
        assert [ring.owner(k) for k in KEYS] == before

    def test_member_loss_only_remaps_its_own_keys(self):
        ring = ring_with(["n0", "n1", "n2", "n3"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("n3")
        for key, owner in before.items():
            if owner != "n3":
                assert ring.owner(key) == owner
            else:
                assert ring.owner(key) in ("n0", "n1", "n2")

    def test_spread_is_reasonably_balanced(self):
        ring = ring_with([f"n{i}" for i in range(4)])
        histogram = ring.spread(KEYS)
        assert sum(histogram.values()) == len(KEYS)
        assert min(histogram.values()) > 0
        assert max(histogram.values()) / min(histogram.values()) < 3.0

    def test_empty_ring_refuses_lookup(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.owner("k")

    def test_len_and_contains(self):
        ring = ring_with(["n0", "n1"])
        assert len(ring) == 2
        assert "n0" in ring and "nx" not in ring
        ring.add("n0")  # idempotent
        assert len(ring) == 2

    def test_rejects_empty_node_id_and_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing().add("")
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestWeightedRing:
    """Per-member weights: proportional placement, weight-1 identity."""

    def test_weight_one_reproduces_unweighted_placement_exactly(self):
        # Property: for any membership, adding every member with an
        # explicit weight of 1 is byte-identical to the historical
        # unweighted ring — same vnode labels, same owners everywhere.
        for members in (
            ["n0"],
            ["n0", "n1"],
            ["n0", "n1", "n2"],
            [f"site-{i}/node-{j}" for i in range(3) for j in range(4)],
        ):
            unweighted = ring_with(members)
            weighted = HashRing()
            for member in members:
                weighted.add(member, weight=1)
            assert weighted._points == unweighted._points
            assert weighted._owners == unweighted._owners
            assert [weighted.owner(k) for k in KEYS] == [
                unweighted.owner(k) for k in KEYS
            ]

    def test_weighted_member_owns_a_proportional_share(self):
        ring = HashRing()
        ring.add("small")
        ring.add("big", weight=3)
        histogram = ring.spread(KEYS)
        # big hashes 3x the vnodes, so it should own roughly 3x the
        # keys; allow generous slack for hash variance.
        assert histogram["big"] > histogram["small"]
        ratio = histogram["big"] / max(1, histogram["small"])
        assert 1.5 < ratio < 6.0

    def test_reweighting_is_deterministic_and_idempotent(self):
        a = HashRing()
        a.add("n0", weight=2)
        a.add("n1")
        b = HashRing()
        b.add("n1")
        b.add("n0")
        b.add("n0", weight=2)  # re-add with new weight reweights
        assert a.weight("n0") == b.weight("n0") == 2
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]
        a.add("n0", weight=2)  # same weight: no-op
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_weight_validation_and_introspection(self):
        ring = HashRing()
        with pytest.raises(ValueError):
            ring.add("n0", weight=0)
        ring.add("n0", weight=2)
        assert ring.weight("n0") == 2
        with pytest.raises(KeyError):
            ring.weight("missing")
        ring.remove("n0")
        ring.add("n0")
        assert ring.weight("n0") == 1
