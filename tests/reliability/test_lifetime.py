"""Tests for the lifetime (failure + repair) simulator."""

import math

import numpy as np
import pytest

from repro.graphs import mirrored_graph
from repro.reliability import (
    LifetimeConfig,
    failure_predicate_for_graph,
    failure_predicate_for_groups,
    mttdl_mirrored,
    mttdl_raid,
    simulate_lifetime,
)


class TestPredicates:
    def test_group_predicate_raid5(self):
        fails = failure_predicate_for_groups(2, 4, 1)
        assert not fails(frozenset({0, 4}))  # one per group
        assert fails(frozenset({0, 1}))  # two in group 0

    def test_group_predicate_raid6(self):
        fails = failure_predicate_for_groups(2, 4, 2)
        assert not fails(frozenset({0, 1}))
        assert fails(frozenset({0, 1, 2}))

    def test_graph_predicate_matches_decoder(self):
        g = mirrored_graph(4)
        fails = failure_predicate_for_graph(g)
        assert not fails(frozenset({0, 5}))
        assert fails(frozenset({0, 4}))


class TestConfig:
    def test_failure_rate_matches_afr(self):
        cfg = LifetimeConfig(num_devices=10, afr=0.01, mttr_years=0.01)
        # P(fail within a year) = 1 - exp(-lambda) = afr
        assert 1 - math.exp(-cfg.failure_rate) == pytest.approx(0.01)

    def test_rejects_bad_afr(self):
        cfg = LifetimeConfig(num_devices=10, afr=0.0, mttr_years=0.01)
        with pytest.raises(ValueError):
            _ = cfg.failure_rate


class TestSimulation:
    def test_no_loss_when_tolerance_huge(self):
        fails = failure_predicate_for_groups(1, 10, 10)
        cfg = LifetimeConfig(num_devices=10, afr=0.5, mttr_years=0.1)
        result = simulate_lifetime(
            fails, cfg, n_runs=30, rng=np.random.default_rng(0)
        )
        assert result.p_loss == 0.0
        assert result.mttdl_estimate() is None
        assert result.mean_time_to_loss is None

    def test_certain_loss_with_zero_tolerance(self):
        fails = failure_predicate_for_groups(1, 10, 0)
        cfg = LifetimeConfig(
            num_devices=10, afr=0.9, mttr_years=0.1, mission_years=10
        )
        result = simulate_lifetime(
            fails, cfg, n_runs=30, rng=np.random.default_rng(0)
        )
        assert result.p_loss == 1.0
        assert result.mean_time_to_loss is not None
        assert result.mttdl_estimate() is not None

    def test_loss_times_within_mission(self):
        fails = failure_predicate_for_groups(4, 2, 1)
        cfg = LifetimeConfig(
            num_devices=8, afr=0.5, mttr_years=0.2, mission_years=5
        )
        result = simulate_lifetime(
            fails, cfg, n_runs=50, rng=np.random.default_rng(0)
        )
        assert all(0 < t <= 5 for t in result.loss_times)
        assert result.losses == len(result.loss_times)

    def test_deterministic_under_rng(self):
        fails = failure_predicate_for_groups(4, 2, 1)
        cfg = LifetimeConfig(num_devices=8, afr=0.4, mttr_years=0.1)
        r1 = simulate_lifetime(
            fails, cfg, n_runs=40, rng=np.random.default_rng(9)
        )
        r2 = simulate_lifetime(
            fails, cfg, n_runs=40, rng=np.random.default_rng(9)
        )
        assert r1.loss_times == r2.loss_times

    def test_repair_reduces_loss(self):
        """Faster repair must not increase loss probability."""
        fails = failure_predicate_for_groups(24, 2, 1)
        slow = LifetimeConfig(
            num_devices=48, afr=0.3, mttr_years=0.5, mission_years=5
        )
        fast = LifetimeConfig(
            num_devices=48, afr=0.3, mttr_years=0.02, mission_years=5
        )
        p_slow = simulate_lifetime(
            fails, slow, n_runs=60, rng=np.random.default_rng(3)
        ).p_loss
        p_fast = simulate_lifetime(
            fails, fast, n_runs=60, rng=np.random.default_rng(3)
        ).p_loss
        assert p_fast <= p_slow


class TestMTTDLClosedForms:
    def test_mirrored_formula(self):
        lam = -math.log1p(-0.1)
        expect = 1.0 / (2 * lam * lam * 0.05) / 4
        assert mttdl_mirrored(4, 0.1, 0.05) == pytest.approx(expect)

    def test_raid_tolerance_validation(self):
        with pytest.raises(ValueError):
            mttdl_raid(8, 12, 0.01, 0.02, tolerance=3)

    def test_raid6_beats_raid5(self):
        assert mttdl_raid(8, 12, 0.01, 0.02, tolerance=2) > mttdl_raid(
            8, 12, 0.01, 0.02, tolerance=1
        )

    def test_simulation_approximates_markov_mttdl(self):
        """At moderate rates the simulated MTTDL lands within ~2x of the
        Markov approximation for mirrored pairs."""
        afr, mttr = 0.3, 0.02
        analytic = mttdl_mirrored(8, afr, mttr)
        fails = failure_predicate_for_groups(8, 2, 1)
        cfg = LifetimeConfig(
            num_devices=16,
            afr=afr,
            mttr_years=mttr,
            mission_years=analytic * 3,
        )
        result = simulate_lifetime(
            fails, cfg, n_runs=120, rng=np.random.default_rng(0)
        )
        estimate = result.mttdl_estimate()
        assert estimate is not None
        assert analytic / 2.5 <= estimate <= analytic * 2.5


class TestWeibullHazard:
    def test_scale_calibrated_to_afr(self):
        """P(lifetime <= 1 yr) must equal the AFR for any shape."""
        import numpy as np

        for shape in (0.7, 1.0, 2.0):
            cfg = LifetimeConfig(
                num_devices=1, afr=0.2, mttr_years=0.1,
                hazard_shape=shape,
            )
            rng = np.random.default_rng(0)
            draws = np.array(
                [cfg.sample_lifetime(rng) for _ in range(30_000)]
            )
            assert (draws <= 1.0).mean() == pytest.approx(0.2, abs=0.01)

    def test_rejects_nonpositive_shape(self):
        cfg = LifetimeConfig(
            num_devices=1, afr=0.1, mttr_years=0.1, hazard_shape=0.0
        )
        with pytest.raises(ValueError):
            _ = cfg.weibull_scale

    def test_wearout_hurts_multi_year_missions(self):
        """With lifetimes calibrated to the same *first-year* AFR,
        wear-out (shape > 1) concentrates failures mid-mission and must
        not improve on the exponential model over several years, while a
        decreasing hazard (shape < 1) leaves long-lived survivors and
        must not be worse than exponential."""
        fails = failure_predicate_for_groups(24, 2, 1)
        base = dict(
            num_devices=48, afr=0.3, mttr_years=0.15, mission_years=3
        )

        def p_loss(shape):
            cfg = LifetimeConfig(**base, hazard_shape=shape)
            return simulate_lifetime(
                fails, cfg, n_runs=150, rng=np.random.default_rng(0)
            ).p_loss

        p_infant, p_exp, p_wearout = p_loss(0.5), p_loss(1.0), p_loss(2.0)
        assert p_wearout >= p_exp - 0.05
        assert p_infant <= p_exp + 0.05
