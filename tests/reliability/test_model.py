"""Tests for the reliability model, pinned to the paper's Table 5."""

import numpy as np
import pytest

from repro.raid import (
    mirrored_system,
    raid5_system,
    raid6_system,
    striped_system,
)
from repro.reliability import (
    afr_sweep,
    binomial_loss_pmf,
    reliability_table,
    system_failure_probability,
)
from repro.sim import FailureProfile


class TestBinomialPMF:
    def test_sums_to_one(self):
        pmf = binomial_loss_pmf(96, 0.01)
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_direct_formula(self):
        from math import comb

        pmf = binomial_loss_pmf(10, 0.2)
        for k in range(11):
            expect = comb(10, k) * 0.2**k * 0.8 ** (10 - k)
            assert pmf[k] == pytest.approx(expect)

    def test_afr_zero(self):
        pmf = binomial_loss_pmf(5, 0.0)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_afr_one(self):
        pmf = binomial_loss_pmf(5, 1.0)
        assert pmf[-1] == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binomial_loss_pmf(5, 1.5)

    def test_paper_quoted_masses(self):
        """§5.1: P(exactly 3 fail) ~ 0.056 is wrong in the paper's text
        for 96 disks at 1% (it's ~0.057 for 3? compute); we pin our own
        exact values: P(3) and P(5) from the binomial."""
        pmf = binomial_loss_pmf(96, 0.01)
        from math import comb

        assert pmf[3] == pytest.approx(
            comb(96, 3) * 0.01**3 * 0.99**93
        )
        assert pmf[5] < pmf[3] < pmf[1]


class TestSystemFailure:
    def test_paper_table5_striping(self):
        p = FailureProfile.from_analytic(striped_system())
        assert system_failure_probability(p) == pytest.approx(
            0.61895, abs=5e-5
        )

    def test_paper_table5_raid5(self):
        p = FailureProfile.from_analytic(raid5_system())
        assert system_failure_probability(p) == pytest.approx(
            0.04834, abs=5e-5
        )

    def test_paper_table5_raid6(self):
        p = FailureProfile.from_analytic(raid6_system())
        assert system_failure_probability(p) == pytest.approx(
            0.00164, abs=5e-5
        )

    def test_paper_table5_mirrored(self):
        p = FailureProfile.from_analytic(mirrored_system())
        assert system_failure_probability(p) == pytest.approx(
            0.00479, abs=5e-5
        )

    def test_tornado_orders_of_magnitude_better(self, graph3):
        from repro.sim import profile_graph

        prof = profile_graph(graph3, samples_per_k=500, seed=0)
        p_fail = system_failure_probability(prof)
        assert p_fail < 1e-8  # paper: ~6e-10 at AFR 1%

    def test_zero_afr_zero_failure(self):
        p = FailureProfile.from_analytic(raid5_system())
        assert system_failure_probability(p, afr=0.0) == 0.0


class TestReliabilityTable:
    def test_ordering_worst_first(self):
        profiles = [
            FailureProfile.from_analytic(s)
            for s in (
                raid5_system(),
                raid6_system(),
                mirrored_system(),
                striped_system(),
            )
        ]
        table = reliability_table(profiles)
        names = [e.system_name for e in table]
        assert names[0].startswith("Striped")
        pfails = [e.p_fail for e in table]
        assert pfails == sorted(pfails, reverse=True)

    def test_entry_capacity_split(self):
        table = reliability_table(
            [FailureProfile.from_analytic(raid5_system())]
        )
        assert table[0].data_devices == 88
        assert table[0].parity_devices == 8

    def test_str_contains_pfail(self):
        e = reliability_table(
            [FailureProfile.from_analytic(raid5_system())]
        )[0]
        assert "P(fail)" in str(e)


class TestAfrSweep:
    def test_monotone_in_afr(self):
        p = FailureProfile.from_analytic(mirrored_system())
        sweep = afr_sweep(p, [0.001, 0.01, 0.05, 0.1])
        values = [v for _, v in sweep]
        assert values == sorted(values)

    def test_pairs_carry_input_afrs(self):
        p = FailureProfile.from_analytic(mirrored_system())
        sweep = afr_sweep(p, [0.01, 0.02])
        assert [a for a, _ in sweep] == [0.01, 0.02]
