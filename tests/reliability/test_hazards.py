"""Tests for the per-device hazard-curve machinery."""

import math

import numpy as np
import pytest

from repro.reliability import (
    BathtubHazard,
    FleetHazards,
    WeibullHazard,
    calibrated_scale,
    failure_rate_from_afr,
    step_failure_probability,
)


class TestWeibullHazard:
    def test_shape_one_is_memoryless(self):
        h = WeibullHazard.from_afr(0.04, shape=1.0)
        # Every year looks the same when the hazard is exponential.
        probs = [h.annual_failure_probability(y) for y in range(5)]
        assert all(p == pytest.approx(0.04) for p in probs)

    def test_calibration_matches_afr_for_any_shape(self):
        for shape in (0.5, 1.0, 2.0, 4.0):
            h = WeibullHazard.from_afr(0.08, shape=shape)
            assert h.annual_failure_probability(0) == pytest.approx(0.08)

    def test_calibration_matches_lifetime_config_convention(self):
        afr, shape = 0.04, 2.0
        assert calibrated_scale(afr, shape) == pytest.approx(
            1.0 / failure_rate_from_afr(afr) ** (1.0 / shape)
        )

    def test_wearout_rises_infant_falls(self):
        wearout = WeibullHazard.from_afr(0.02, shape=3.0)
        infant = WeibullHazard.from_afr(0.02, shape=0.5)
        assert wearout.annual_failure_probability(
            6
        ) > wearout.annual_failure_probability(0)
        assert infant.annual_failure_probability(
            6
        ) < infant.annual_failure_probability(0)

    def test_chained_steps_reproduce_lifetime_distribution(self):
        # Survival through 12 monthly steps must equal survival
        # through one year: the step probabilities are exact
        # survival-function ratios, not rate approximations.
        h = WeibullHazard.from_afr(0.3, shape=2.5)
        survive = 1.0
        for m in range(12):
            survive *= 1.0 - step_failure_probability(
                h, m / 12, (m + 1) / 12
            )
        assert 1.0 - survive == pytest.approx(0.3)

    def test_sampled_lifetimes_match_first_year_probability(self):
        h = WeibullHazard.from_afr(0.25, shape=1.5)
        rng = np.random.default_rng(7)
        draws = [h.sample_lifetime(rng) for _ in range(4000)]
        frac = sum(1 for t in draws if t <= 1.0) / len(draws)
        assert frac == pytest.approx(0.25, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeibullHazard(shape=0.0)
        with pytest.raises(ValueError):
            WeibullHazard(scale=-1.0)
        with pytest.raises(ValueError):
            calibrated_scale(1.5, 1.0)


class TestBathtubHazard:
    def test_bathtub_profile(self):
        h = BathtubHazard(
            infant=WeibullHazard.from_afr(0.10, shape=0.5),
            wearout=WeibullHazard(shape=4.0, scale=8.0),
        )
        annual = [h.annual_failure_probability(y) for y in range(10)]
        floor = min(annual)
        # High at both ends, lower in the middle: the bathtub.
        assert annual[0] > floor
        assert annual[9] > floor
        assert 0 < annual.index(floor) < 9

    def test_cumulative_is_component_sum(self):
        h = BathtubHazard()
        t = 3.7
        assert h.cumulative(t) == pytest.approx(
            h.infant.cumulative(t) + h.wearout.cumulative(t)
        )

    def test_sample_is_min_of_competing_risks(self):
        h = BathtubHazard()
        a = h.sample_lifetime(np.random.default_rng(3))
        i = h.infant.sample_lifetime(np.random.default_rng(3))
        w = h.wearout.sample_lifetime(np.random.default_rng(3))
        # Not an exact identity (the fleet rng advances between the
        # two component draws), but the sample must be bounded by the
        # same-seed first component draw.
        assert a <= max(i, w)
        assert a > 0


class TestFleetHazards:
    def _fleet(self, **kwargs):
        defaults = dict(
            infant_mortality=0.5,
            batch_defect_rate=0.25,
            batch_size=8,
            defect_multiplier=6.0,
            seed=11,
        )
        defaults.update(kwargs)
        return FleetHazards(
            48, WeibullHazard.from_afr(0.04, shape=2.0), **defaults
        )

    def test_batch_defects_are_contiguous_and_sized(self):
        fleet = self._fleet()
        flagged = np.flatnonzero(fleet.defective)
        assert len(flagged) >= 0.25 * 48
        # Contiguity: the flagged set is a union of whole batches.
        for d in flagged:
            lo = (d // 8) * 8
            assert fleet.defective[lo : lo + 8].all()

    def test_defective_devices_fail_more(self):
        fleet = self._fleet()
        sick = int(np.flatnonzero(fleet.defective)[0])
        well = int(np.flatnonzero(~fleet.defective)[0])
        assert fleet.step_probability(sick, 1.0, 1.5) > (
            fleet.step_probability(well, 1.0, 1.5)
        )

    def test_same_seed_same_fleet(self):
        a, b = self._fleet(), self._fleet()
        assert (a.defective == b.defective).all()
        assert a.step_probabilities(2.0, 2.5) == pytest.approx(
            b.step_probabilities(2.0, 2.5)
        )

    def test_replacement_resets_age_and_clears_defect(self):
        fleet = self._fleet(infant_mortality=0.0)
        sick = int(np.flatnonzero(fleet.defective)[0])
        aged_p = fleet.step_probability(sick, 5.0, 5.5)
        fleet.replace(sick, 5.0)
        fresh_p = fleet.step_probability(sick, 5.0, 5.5)
        assert not fleet.defective[sick]
        assert fleet.age_of(sick, 5.0) == 0.0
        assert fresh_p < aged_p

    def test_infant_replacements_carry_extra_hazard(self):
        always = self._fleet(
            infant_mortality=1.0, batch_defect_rate=0.0
        )
        never = self._fleet(
            infant_mortality=0.0, batch_defect_rate=0.0
        )
        assert always.replace(3, 2.0) is True
        assert never.replace(3, 2.0) is False
        assert always.step_probability(3, 2.0, 2.5) > (
            never.step_probability(3, 2.0, 2.5)
        )
        assert always.summary()["infant_replacements"] == 1

    def test_step_probability_validation(self):
        fleet = self._fleet()
        with pytest.raises(ValueError):
            fleet.step_probability(99, 0.0, 1.0)
        with pytest.raises(ValueError):
            fleet.step_probability(0, 2.0, 1.0)

    def test_constructor_validation(self):
        h = WeibullHazard()
        with pytest.raises(ValueError):
            FleetHazards(0, h)
        with pytest.raises(ValueError):
            FleetHazards(4, h, infant_mortality=1.5)
        with pytest.raises(ValueError):
            FleetHazards(4, h, defect_multiplier=0.5)
