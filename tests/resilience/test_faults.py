"""Tests for fault plans and the injection engine."""

import numpy as np
import pytest

from repro.resilience import (
    DrawerOutages,
    FaultInjector,
    FaultPlan,
    LatentErrors,
    ReplacementJitter,
    SilentCorruption,
    TransientOutages,
)
from repro.storage import DeviceArray, DeviceState, TornadoArchive


@pytest.fixture
def archive(small_tornado):
    archive = TornadoArchive(small_tornado, DeviceArray(32), block_size=64)
    archive.put("doc", bytes(range(256)) * 8)
    return archive


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            faults=(
                TransientOutages(rate=0.02, mean_outage_steps=3.0),
                DrawerOutages(rate=0.001, mode="fail"),
                LatentErrors(rate=0.01),
                SilentCorruption(rate=0.01),
                ReplacementJitter(max_extra_steps=4),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan(faults=(TransientOutages(),))
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"faults": [{"kind": "gremlins"}]})

    def test_fault_classes_deduplicated_in_order(self):
        plan = FaultPlan(
            faults=(
                LatentErrors(rate=0.1),
                TransientOutages(),
                LatentErrors(rate=0.2),
            )
        )
        assert plan.fault_classes == ("latent", "transient")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TransientOutages(rate=1.5)
        with pytest.raises(ValueError):
            TransientOutages(mean_outage_steps=0.5)
        with pytest.raises(ValueError):
            DrawerOutages(mode="explode")
        with pytest.raises(ValueError):
            ReplacementJitter(max_extra_steps=-1)


class TestTransientInjection:
    def test_outage_and_recovery(self, archive):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    TransientOutages(rate=1.0, mean_outage_steps=1.0),
                )
            )
        )
        rng = np.random.default_rng(0)
        events = injector.inject(0, archive, rng)
        assert len(archive.devices.unavailable_ids) == 32
        assert all(e.kind == "fault" for e in events)
        # mean 1.0 forces every geometric draw to exactly one step
        events = injector.inject(1, archive, rng)
        recoveries = [e for e in events if e.kind == "recovery"]
        assert len(archive.devices.unavailable_ids) == 32  # re-hit
        assert len(recoveries) == 32
        assert injector.counts["recovery"] == 32

    def test_zero_rate_is_inert(self, archive):
        injector = FaultInjector(
            FaultPlan(faults=(TransientOutages(rate=0.0),))
        )
        events = injector.inject(0, archive, np.random.default_rng(0))
        assert events == []
        assert archive.devices.unavailable_ids == []


class TestDrawerInjection:
    def test_fail_mode_destroys_whole_drawer(self, archive):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DrawerOutages(rate=1.0, drawer_size=12, mode="fail"),
                )
            )
        )
        injector.inject(0, archive, np.random.default_rng(0))
        # 32 devices = drawers [0..11], [12..23], [24..31]
        assert all(
            archive.devices[d].state is DeviceState.FAILED
            for d in range(32)
        )
        assert injector.counts["drawer"] == 3

    def test_transient_mode_interrupts_correlated_group(self, archive):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DrawerOutages(
                        rate=1.0, drawer_size=12, mode="transient"
                    ),
                )
            )
        )
        injector.inject(0, archive, np.random.default_rng(0))
        assert set(archive.devices.unavailable_ids) == set(range(32))


class TestBlockLevelInjection:
    def test_latent_errors_drop_blocks(self, archive):
        before = sum(len(d.blocks) for d in archive.devices.devices)
        injector = FaultInjector(
            FaultPlan(faults=(LatentErrors(rate=1.0),))
        )
        events = injector.inject(0, archive, np.random.default_rng(0))
        after = sum(len(d.blocks) for d in archive.devices.devices)
        assert before - after == len(events)
        assert injector.counts["latent"] == len(events)
        assert len(events) > 0

    def test_corruption_flips_bytes_in_place(self, archive):
        snapshot = {
            d.device_id: dict(d.blocks)
            for d in archive.devices.devices
        }
        injector = FaultInjector(
            FaultPlan(faults=(SilentCorruption(rate=1.0),))
        )
        events = injector.inject(0, archive, np.random.default_rng(0))
        assert len(events) > 0
        changed = 0
        for d in archive.devices.devices:
            assert set(d.blocks) == set(snapshot[d.device_id])  # no loss
            for key, raw in d.blocks.items():
                if raw != snapshot[d.device_id][key]:
                    changed += 1
        assert changed == len(events)

    def test_replacement_jitter_bounded(self, archive):
        injector = FaultInjector(
            FaultPlan(faults=(ReplacementJitter(max_extra_steps=3),))
        )
        rng = np.random.default_rng(0)
        draws = [injector.replacement_extra(rng) for _ in range(200)]
        assert min(draws) >= 0
        assert max(draws) <= 3
        assert injector.counts["replacement_jitter"] == sum(
            1 for d in draws if d > 0
        )


class TestReproducibility:
    def test_same_seed_same_faults(self, small_tornado):
        plan = FaultPlan(
            faults=(
                TransientOutages(rate=0.3),
                LatentErrors(rate=0.2),
                SilentCorruption(rate=0.2),
            )
        )

        def run():
            archive = TornadoArchive(
                small_tornado, DeviceArray(32), block_size=64
            )
            archive.put("doc", bytes(range(256)) * 8)
            injector = FaultInjector(plan)
            rng = np.random.default_rng(123)
            log = []
            for step in range(5):
                log.extend(
                    (e.step, e.kind, e.detail)
                    for e in injector.inject(step, archive, rng)
                )
            return log, dict(injector.counts)

        assert run() == run()


class TestDeviceHazardInjection:
    def test_spec_roundtrip_and_validation(self):
        from repro.resilience import DeviceHazards, SiteBlackouts

        plan = FaultPlan(
            faults=(
                DeviceHazards(
                    curve="bathtub",
                    shape=3.0,
                    afr=0.05,
                    infant_mortality=0.2,
                    batch_defect_rate=0.1,
                ),
                SiteBlackouts(rate=0.05, mean_outage_steps=3.0),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        with pytest.raises(ValueError):
            DeviceHazards(curve="tub")
        with pytest.raises(ValueError):
            DeviceHazards(shape=0.0)
        with pytest.raises(ValueError):
            DeviceHazards(afr=0.0)
        with pytest.raises(ValueError):
            SiteBlackouts(max_concurrent=0)

    def test_wearout_failures_accumulate_with_age(self, archive):
        from repro.resilience import DeviceHazards

        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DeviceHazards(
                        shape=4.0, afr=0.02, steps_per_year=4
                    ),
                )
            )
        )
        rng = np.random.default_rng(5)
        early = late = 0
        for step in range(24):  # six simulated years
            events = injector.inject(step, archive, rng)
            failures = [e for e in events if "failed at age" in e.detail]
            if step < 8:
                early += len(failures)
            else:
                late += len(failures)
        assert injector.counts.get("hazard", 0) == early + late
        # Shape 4 wear-out: the old fleet fails much harder than the
        # young one.
        assert late > early

    def test_replacement_draws_infant_mortality(self, archive):
        from repro.resilience import DeviceHazards

        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DeviceHazards(
                        shape=1.0,
                        afr=0.5,
                        infant_mortality=1.0,
                        steps_per_year=4,
                    ),
                )
            )
        )
        rng = np.random.default_rng(1)
        infants = 0
        for step in range(12):
            events = injector.inject(step, archive, rng)
            infants += sum(
                1 for e in events if "infant-mortality" in e.detail
            )
            # Instant replacement pipeline: every failed device is
            # swapped before the next step, like run_mission's lag-0.
            for did in archive.devices.failed_ids:
                archive.devices[did].rebuild()
        assert infants > 0
        assert injector.hazard_summary()["infant_replacements"] == infants

    def test_hazard_runs_are_reproducible(self, small_tornado):
        from repro.resilience import DeviceHazards

        plan = FaultPlan(
            faults=(
                DeviceHazards(
                    curve="bathtub",
                    shape=4.0,
                    afr=0.3,
                    infant_mortality=0.5,
                    batch_defect_rate=0.2,
                    batch_size=8,
                    steps_per_year=4,
                ),
            )
        )

        def run():
            archive = TornadoArchive(
                small_tornado, DeviceArray(32), block_size=64
            )
            archive.put("doc", bytes(range(256)) * 8)
            injector = FaultInjector(plan)
            rng = np.random.default_rng(77)
            log = []
            for step in range(10):
                log.extend(
                    (e.step, e.kind, e.detail)
                    for e in injector.inject(step, archive, rng)
                )
                for did in archive.devices.failed_ids:
                    archive.devices[did].rebuild()
            return log, injector.hazard_summary()

        assert run() == run()

    def test_site_blackouts_skipped_by_device_layer(self, archive):
        from repro.resilience import SiteBlackouts

        injector = FaultInjector(
            FaultPlan(faults=(SiteBlackouts(rate=1.0),))
        )
        events = injector.inject(0, archive, np.random.default_rng(0))
        assert events == []
        assert archive.devices.failed_ids == []
