"""Tests for seeded fault-injection campaigns."""

import pytest

from repro.resilience import (
    CampaignConfig,
    DrawerOutages,
    FaultPlan,
    LatentErrors,
    SilentCorruption,
    TransientOutages,
    run_campaign,
)
from repro.storage import DeviceArray, MissionConfig, TornadoArchive

FULL_PLAN = FaultPlan(
    faults=(
        TransientOutages(rate=0.05, mean_outage_steps=2.0),
        DrawerOutages(rate=0.1, drawer_size=12, mode="transient"),
        LatentErrors(rate=0.02),
        SilentCorruption(rate=0.02),
    )
)

QUIET_CONFIG = CampaignConfig(
    mission=MissionConfig(
        years=1.0, steps_per_year=12, afr=0.01, repair_margin=2
    ),
    scrub_interval=3,
    read_interval=2,
)


def build_archive(graph):
    archive = TornadoArchive(graph, DeviceArray(32), block_size=64)
    archive.put("alpha", bytes(range(256)) * 8)
    archive.put("beta", b"archive payload " * 100)
    return archive


def run_once(graph, seed=11):
    return run_campaign(
        build_archive(graph), FULL_PLAN, QUIET_CONFIG, seed=seed
    )


class TestReproducibility:
    def test_same_seed_same_report(self, small_tornado):
        a, b = run_once(small_tornado), run_once(small_tornado)
        assert a.fault_counts == b.fault_counts
        assert a.mission.events == b.mission.events
        assert a.repair_queue_depth == b.repair_queue_depth
        assert a.describe() == b.describe()

    def test_different_seed_diverges(self, small_tornado):
        a = run_once(small_tornado, seed=11)
        b = run_once(small_tornado, seed=12)
        assert a.mission.events != b.mission.events


class TestFaultCoverage:
    def test_all_requested_classes_injected(self, small_tornado):
        report = run_once(small_tornado)
        for kind in ("transient", "drawer", "latent", "corruption"):
            assert report.fault_counts.get(kind, 0) > 0, kind

    def test_transient_outages_recover(self, small_tornado):
        report = run_once(small_tornado)
        assert report.fault_counts["recovery"] > 0


class TestTelemetry:
    def test_queue_depth_tracked_every_step(self, small_tornado):
        report = run_once(small_tornado)
        steps = len(report.repair_queue_depth)
        assert steps == QUIET_CONFIG.mission.num_steps or not report.survived
        assert report.max_queue_depth >= 0

    def test_read_probes_exercised(self, small_tornado):
        report = run_once(small_tornado)
        assert report.reads_attempted > 0

    def test_describe_mentions_faults_and_outcome(self, small_tornado):
        text = run_once(small_tornado).describe()
        assert "faults injected" in text
        assert "outcome" in text


class TestScrubbing:
    def test_scrub_repairs_silent_corruption(self, small_tornado):
        # Per-step scrubbing keeps pace with the corruption rate, so
        # every flipped block is caught and rewritten before enough
        # accumulate to defeat the decoder.
        plan = FaultPlan(faults=(SilentCorruption(rate=0.05),))
        config = CampaignConfig(
            mission=QUIET_CONFIG.mission,
            scrub_interval=1,
            read_interval=2,
        )
        report = run_campaign(
            build_archive(small_tornado), plan, config, seed=5
        )
        assert report.fault_counts["corruption"] > 0
        assert report.scrubbed_blocks > 0
        assert report.survived
        # the archive came through with objects readable
        for event in report.loss_events:
            pytest.fail(f"unexpected loss: {event}")


class TestLoss:
    def test_destructive_drawer_storm_loses_data(self, small_tornado):
        plan = FaultPlan(
            faults=(
                DrawerOutages(rate=0.9, drawer_size=12, mode="fail"),
            )
        )
        config = CampaignConfig(
            mission=MissionConfig(
                years=1.0,
                steps_per_year=12,
                afr=0.0,
                replacement_lag_steps=50,
            ),
            scrub_interval=0,
            read_interval=0,
        )
        report = run_campaign(
            build_archive(small_tornado), plan, config, seed=0
        )
        assert not report.survived
        assert report.lost_objects
        assert report.loss_events


class TestCampaignTracing:
    def test_campaign_span_tree_and_fault_events(self, small_tornado):
        from repro.obs.analyze import build_trace_trees, span_records
        from repro.obs.trace import Tracer, trace_capture

        with trace_capture(Tracer(seed=11)) as t:
            report = run_once(small_tornado)

        roots, orphans = build_trace_trees(span_records(t.records))
        assert orphans == []
        (root,) = roots
        assert root.name == "resilience.campaign"
        assert root.attrs["survived"] == report.survived
        child_names = {c.name for c in root.children}
        assert "resilience.read_probe" in child_names
        assert "resilience.scrub" in child_names
        # Injected faults surface as point events on the campaign span.
        fault_events = [
            e
            for e in root.record["events"]
            if e["name"] == "resilience.fault"
        ]
        # Every counted fault (recoveries included) appears as an event.
        assert len(fault_events) == sum(report.fault_counts.values())
        kinds = {e["kind"] for e in fault_events}
        assert kinds <= set(report.fault_counts)

    def test_tracing_does_not_perturb_results(self, small_tornado):
        from repro.obs.trace import Tracer, trace_capture

        baseline = run_once(small_tornado)
        with trace_capture(Tracer(seed=11)):
            traced = run_once(small_tornado)
        assert traced.fault_counts == baseline.fault_counts
        assert traced.survived == baseline.survived
        assert traced.lost_objects == baseline.lost_objects
        assert (
            traced.repair_queue_depth == baseline.repair_queue_depth
        )
