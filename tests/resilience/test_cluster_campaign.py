"""Cluster chaos campaigns: config, plans, and live multi-process runs.

The live tests spawn a real coordinator + storage-node fleet per run
(like ``tests/cluster/test_driver.py``), so they are slow-ish; rates
are forced to 1.0 where a fault *must* fire so the assertions are
deterministic rather than seed-archaeology.
"""

import pytest

from repro.resilience import (
    ClusterCampaignConfig,
    CoordinatorCrashes,
    FaultPlan,
    LatentErrors,
    NetworkPartitions,
    NodeCrashes,
    SlowNodes,
    default_cluster_plan,
    run_cluster_campaign,
)


class TestConfigAndPlans:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterCampaignConfig(nodes=1)
        with pytest.raises(ValueError):
            ClusterCampaignConfig(objects=0)
        with pytest.raises(ValueError):
            ClusterCampaignConfig(steps=0)
        with pytest.raises(ValueError):
            ClusterCampaignConfig(rpc_timeout=0)

    def test_default_plan_covers_every_cluster_fault_kind(self):
        plan = default_cluster_plan()
        assert set(plan.fault_classes) == {
            "coordinator_crash",
            "node_crash",
            "partition",
            "slow",
        }

    def test_cluster_specs_round_trip_through_plan_json(self):
        plan = FaultPlan(
            faults=(
                CoordinatorCrashes(rate=0.5),
                NodeCrashes(rate=0.25, restart_delay_steps=2),
                NetworkPartitions(rate=0.1, mean_partition_steps=3.0),
                SlowNodes(rate=0.2, delay_seconds=0.1),
                LatentErrors(rate=0.01),  # device-level, coexists
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CoordinatorCrashes(rate=1.5)
        with pytest.raises(ValueError):
            NodeCrashes(restart_delay_steps=-1)
        with pytest.raises(ValueError):
            NetworkPartitions(mean_partition_steps=0.5)
        with pytest.raises(ValueError):
            SlowNodes(delay_seconds=-1.0)


class TestLiveCampaign:
    def test_coordinator_crashes_recover_byte_identically(self, tmp_path):
        # Every step SIGKILLs the coordinator; every recovery must
        # reproduce the exact metadata state from the WAL.
        plan = FaultPlan(faults=(CoordinatorCrashes(rate=1.0),))
        config = ClusterCampaignConfig(
            nodes=3,
            objects=2,
            object_size=1024,
            block_size=256,
            steps=2,
            seed=7,
            wal_dir=str(tmp_path / "wal"),
            rpc_timeout=0.5,
        )
        report = run_cluster_campaign(plan, config)
        assert report.coordinator_crashes == 2
        assert report.recoveries_verified == 2
        assert report.recovery_mismatches == 0
        assert report.data_loss is False
        assert report.verified_objects == report.total_objects == 2
        assert report.mismatched == 0

    def test_full_fault_mix_has_zero_data_loss(self):
        plan = FaultPlan(
            faults=(
                CoordinatorCrashes(rate=0.5),
                NodeCrashes(rate=0.6, restart_delay_steps=1),
                NetworkPartitions(rate=0.6, mean_partition_steps=1.0),
                SlowNodes(rate=0.6, delay_seconds=0.05),
            )
        )
        config = ClusterCampaignConfig(
            nodes=3,
            objects=2,
            object_size=1024,
            block_size=256,
            steps=3,
            seed=0,
            rpc_timeout=0.5,
        )
        report = run_cluster_campaign(plan, config)
        assert report.data_loss is False
        assert report.verified_objects == report.total_objects
        assert report.mismatched == 0
        assert report.acked_put_lost == 0
        # The seeded schedule actually disrupted something.
        disruptive = (
            report.coordinator_crashes
            + report.node_kills
            + report.partitions
            + report.slowdowns
        )
        assert disruptive > 0
        # Failed reads during faults are tolerated; losses are not.
        assert report.status["state_sha256"]

    def test_seeded_campaign_is_deterministic_run_to_run(self):
        plan = FaultPlan(
            faults=(NodeCrashes(rate=1.0, restart_delay_steps=1),)
        )
        config = ClusterCampaignConfig(
            nodes=3,
            objects=2,
            object_size=1024,
            block_size=256,
            steps=2,
            seed=3,
            rpc_timeout=0.5,
        )
        first = run_cluster_campaign(plan, config)
        second = run_cluster_campaign(plan, config)
        assert first.data_loss is False and second.data_loss is False
        assert first.events == second.events
        # The acceptance bar: repair-byte counts repeat exactly.
        assert first.repair_bytes == second.repair_bytes
        assert first.repair == second.repair
        # Per-node attribution repeats too (the state digest itself
        # differs across runs: it canonicalizes member host:port, and
        # ports are ephemeral — it verifies recovery *within* a run).
        assert (
            first.status["repair_bytes_by_node"]
            == second.status["repair_bytes_by_node"]
        )

    def test_midwrite_race_acked_puts_survive(self, tmp_path):
        plan = FaultPlan(faults=(CoordinatorCrashes(rate=1.0),))
        config = ClusterCampaignConfig(
            nodes=3,
            objects=1,
            object_size=1024,
            block_size=256,
            steps=1,
            seed=11,
            wal_dir=str(tmp_path / "wal"),
            rpc_timeout=0.5,
            midwrite_race=True,
        )
        report = run_cluster_campaign(plan, config)
        assert report.coordinator_crashes == 1
        assert report.acked_put_lost == 0
        assert report.data_loss is False
        assert report.verified_objects == report.total_objects
