"""Tests for the deterministic retry/backoff policy."""

import pytest

from repro.resilience import RetryPolicy


class TestDelays:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert policy.delays() == policy.delays()
        assert len(policy.delays()) == 5

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=0.4,
            jitter=0.0,
            seed=0,
        )
        assert policy.delays() == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4, 0.4]
        )

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=50,
            base_delay=1.0,
            multiplier=1.0,
            max_delay=1.0,
            jitter=0.25,
            seed=7,
        )
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=4, seed=1).delays()
        b = RetryPolicy(max_attempts=4, seed=2).delays()
        assert a != b


class TestWait:
    def test_sleeps_through_hook(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, jitter=0.0, seed=0, sleep=slept.append
        )
        assert policy.wait(0)
        assert policy.wait(2)
        assert slept == [policy.delays()[0], policy.delays()[2]]

    def test_exhaustion_returns_false_without_sleeping(self):
        slept = []
        policy = RetryPolicy(max_attempts=2, sleep=slept.append)
        assert not policy.wait(2)
        assert not policy.wait(99)
        assert slept == []


class TestCall:
    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise IOError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None)
        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3

    def test_reraises_after_exhaustion(self):
        policy = RetryPolicy(max_attempts=1, sleep=lambda _s: None)
        calls = []

        def always_fails():
            calls.append(1)
            raise IOError("still down")

        with pytest.raises(IOError):
            policy.call(always_fails)
        assert len(calls) == 2  # initial try + one retry

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        calls = []

        def raises_value_error():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.call(raises_value_error)
        assert len(calls) == 1


class TestValidation:
    def test_rejects_negative_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
