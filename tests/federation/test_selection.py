"""Tests for cooperative graph selection."""

import pytest

from repro.core import tornado_graph
from repro.federation import select_complementary_pair
from repro.graphs import mirrored_graph


@pytest.fixture(scope="module")
def pool():
    return [tornado_graph(16, seed=s, name=f"g{s}") for s in (0, 1, 2)]


class TestSelectComplementaryPair:
    def test_rejects_tiny_pool(self):
        with pytest.raises(ValueError):
            select_complementary_pair([mirrored_graph(4)])

    def test_ranking_covers_all_pairs(self, pool):
        report = select_complementary_pair(
            pool, site_max_size=5, curve_samples=200
        )
        assert len(report.ranking) == 3  # C(3,2)
        assert report.best == report.ranking[0]

    def test_duplicates_included_when_asked(self, pool):
        report = select_complementary_pair(
            pool,
            site_max_size=5,
            curve_samples=200,
            allow_duplicates=True,
        )
        assert len(report.ranking) == 6
        names = {
            (s.graph_a, s.graph_b) for s in report.ranking
        }
        assert ("g0", "g0") in names

    def test_ranking_is_sorted(self, pool):
        report = select_complementary_pair(
            pool, site_max_size=5, curve_samples=200,
            allow_duplicates=True,
        )
        keys = [s.sort_key for s in report.ranking]
        assert keys == sorted(keys, reverse=True)

    def test_complementary_beats_duplicated(self, pool):
        """A same-graph pairing can never outrank every mixed pairing."""
        report = select_complementary_pair(
            pool,
            site_max_size=6,
            curve_samples=300,
            allow_duplicates=True,
        )
        assert report.best.graph_a != report.best.graph_b

    def test_describe_lists_all(self, pool):
        report = select_complementary_pair(
            pool, site_max_size=5, curve_samples=100
        )
        text = report.describe()
        assert text.count("+") >= 3
        assert "first failure" in text

    def test_none_detected_ranks_above_detected(self):
        """A pairing with no detected failure within the bound must
        outrank pairings with one."""
        from repro.federation.selection import PairingScore

        undetected = PairingScore("a", "b", None, 0.5)
        detected = PairingScore("c", "d", 40, 0.0)
        assert undetected.sort_key > detected.sort_key
