"""Property tests for federated decode semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PeelingDecoder, tornado_graph
from repro.federation import FederatedSystem


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), data=st.data())
def test_federation_never_worse_than_best_site(seed, data):
    """If either site alone could decode its own losses, the coupled
    system must also succeed."""
    g1 = tornado_graph(16, seed=seed % 6)
    g2 = tornado_graph(16, seed=(seed % 6) + 10)
    system = FederatedSystem([g1, g2])
    rng = np.random.default_rng(seed)
    k = data.draw(st.integers(0, 40))
    lost = rng.choice(64, size=k, replace=False)
    site_a = [d for d in lost if d < 32]
    site_b = [d - 32 for d in lost if d >= 32]

    ok_a = PeelingDecoder(g1).is_recoverable(site_a)
    ok_b = PeelingDecoder(g2).is_recoverable(site_b)
    joint = system.is_recoverable(lost)
    if ok_a or ok_b:
        assert joint


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), data=st.data())
def test_losing_more_devices_never_helps_federation(seed, data):
    g1 = tornado_graph(16, seed=seed % 4)
    system = FederatedSystem([g1, g1])
    rng = np.random.default_rng(seed)
    k = data.draw(st.integers(0, 50))
    base = set(rng.choice(64, size=k, replace=False).tolist())
    extra = int(rng.integers(0, 64))
    if system.is_recoverable(base | {extra}):
        assert system.is_recoverable(base)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 300))
def test_decode_result_accounting(seed):
    """lost_data + recoverable data partitions the data set."""
    g1 = tornado_graph(16, seed=seed % 5)
    g2 = tornado_graph(16, seed=(seed % 5) + 7)
    system = FederatedSystem([g1, g2])
    rng = np.random.default_rng(seed)
    lost = rng.choice(64, size=45, replace=False)
    result = system.decode(lost)
    assert result.lost_data <= set(system.data_nodes)
    assert result.success == (not result.lost_data)
    assert result.rounds >= 1
