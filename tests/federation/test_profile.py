"""Tests for federated Monte Carlo profiles and the combined decoder."""

import numpy as np
import pytest

from repro.core import tornado_graph
from repro.federation import (
    FederatedSystem,
    federated_batch_decoder,
    federated_profile,
)
from repro.graphs import mirrored_graph


@pytest.fixture(scope="module")
def small_federation():
    g1 = tornado_graph(16, seed=0)
    g2 = tornado_graph(16, seed=1)
    return FederatedSystem([g1, g2])


class TestCombinedDecoder:
    def test_agrees_with_scalar_coupled_decode(self, small_federation, rng):
        dec = federated_batch_decoder(small_federation)
        masks = rng.random((400, 64)) < 0.45
        batch = dec.decode_batch(masks)
        scalar = np.array(
            [
                small_federation.is_recoverable(np.flatnonzero(m))
                for m in masks
            ]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_one_whole_site_lost_recovers(self, small_federation):
        dec = federated_batch_decoder(small_federation)
        mask = np.zeros((1, 64), dtype=bool)
        mask[0, :32] = True
        assert dec.decode_batch(mask)[0]

    def test_everything_lost_fails(self, small_federation):
        dec = federated_batch_decoder(small_federation)
        assert not dec.decode_batch(np.ones((1, 64), dtype=bool))[0]

    def test_mirror_pair_federation(self):
        g = mirrored_graph(2)
        system = FederatedSystem([g, g])
        dec = federated_batch_decoder(system)
        # lose block 0's pair at site A only -> rescued by site B
        mask = np.zeros((2, 8), dtype=bool)
        mask[0, [0, 2]] = True
        # lose block 0's pair at both sites -> loss
        mask[1, [0, 2, 4, 6]] = True
        ok = dec.decode_batch(mask)
        np.testing.assert_array_equal(ok, [True, False])


class TestFederatedProfile:
    def test_endpoints_and_shape(self, small_federation):
        prof = federated_profile(
            small_federation, samples_per_k=200, seed=0
        )
        assert prof.num_devices == 64
        assert prof.fail_fraction[0] == 0.0
        assert prof.fail_fraction[-1] == 1.0
        assert prof.num_data == 16

    def test_sparse_grid_interpolation(self, small_federation):
        prof = federated_profile(
            small_federation,
            samples_per_k=200,
            seed=0,
            ks=[16, 32, 48],
        )
        assert prof.fail_fraction.shape == (65,)
        assert (prof.fail_fraction >= 0).all()

    def test_federation_dominates_single_site(self, small_federation):
        """P(loss | k of 2n) for the federation must not exceed the
        single site's P(loss | k of n) at matched per-site damage."""
        from repro.sim import profile_graph

        single = profile_graph(
            small_federation.graphs[0], samples_per_k=600, seed=1
        )
        joint = federated_profile(
            small_federation, samples_per_k=600, seed=1
        )
        # compare at 2k joint vs k single for a few points
        for k in (8, 12, 16):
            assert (
                joint.fail_fraction[2 * k]
                <= single.fail_fraction[k] + 0.05
            )

    def test_custom_name(self, small_federation):
        prof = federated_profile(
            small_federation, samples_per_k=50, seed=0, ks=[10],
            name="pair-A",
        )
        assert prof.system_name == "pair-A"
