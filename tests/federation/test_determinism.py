"""Reproducibility and coupling properties the federation layer needs.

The sites subsystem freezes graph selection into a manifest and
replays first-failure claims in CI, so selection and detection must be
bit-stable run to run; the gateway's coupled read rung is only sound
if witnesses — losses neither site survives alone but the pair does —
actually exist for the deployed catalog pairing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decoder import PeelingDecoder
from repro.federation import (
    FederatedSystem,
    federated_first_failure,
    select_complementary_pair,
)
from repro.graphs import tornado_catalog_graph
from repro.sites import find_coupled_witness


@pytest.fixture(scope="module")
def catalog():
    return [tornado_catalog_graph(n) for n in (1, 2, 3)]


class TestSelectionDeterminism:
    def test_same_seed_same_report(self, catalog):
        kwargs = dict(site_max_size=6, curve_samples=100, seed=0)
        first = select_complementary_pair(catalog, **kwargs)
        second = select_complementary_pair(catalog, **kwargs)
        assert first == second

    def test_duplicated_pairing_never_wins_whatever_the_curve_seed(
        self, catalog
    ):
        # Detected first failures are exhaustive and seed-free; only
        # the mid-curve tiebreak is Monte Carlo.  At a bound where the
        # duplicated pairing's joint failure (10) is detected but the
        # complementary ones aren't, no curve seed can put a same-graph
        # pair on top.
        for seed in (0, 1, 2):
            report = select_complementary_pair(
                catalog,
                site_max_size=5,
                curve_samples=100,
                allow_duplicates=True,
                seed=seed,
            )
            assert report.best.graph_a != report.best.graph_b


class TestFirstFailureDeterminism:
    def test_same_inputs_same_detection(self, catalog):
        system = FederatedSystem([catalog[0], catalog[0]])
        first = federated_first_failure(system, site_max_size=5)
        second = federated_first_failure(system, site_max_size=5)
        assert first == second
        assert first is not None and first[0] == 10


class TestSiteOfRoundTrip:
    @given(st.integers(min_value=0, max_value=96 * 3 - 1))
    @settings(max_examples=50, deadline=None)
    def test_site_of_inverts_device_numbering(self, device):
        graphs = [tornado_catalog_graph(n) for n in (1, 2, 3)]
        system = FederatedSystem(graphs)
        site, local = system.site_of(device)
        assert 0 <= site < system.num_sites
        assert 0 <= local < system.nodes_per_site
        assert site * system.nodes_per_site + local == device


class TestCoupledWitness:
    def test_witness_exists_for_the_deployed_pairing(self, catalog):
        witness = find_coupled_witness(catalog[1], catalog[2], seed=1)
        assert witness is not None
        erased_a, erased_b = witness
        # Contract: each site fails alone...
        assert not PeelingDecoder(catalog[1]).decode(erased_a).success
        assert not PeelingDecoder(catalog[2]).decode(erased_b).success
        # ...but the coupled decode survives.
        system = FederatedSystem([catalog[1], catalog[2]])
        devices = list(erased_a) + [
            catalog[1].num_nodes + x for x in erased_b
        ]
        assert system.is_recoverable(devices)

    def test_witness_search_is_deterministic(self, catalog):
        first = find_coupled_witness(catalog[1], catalog[2], seed=1)
        second = find_coupled_witness(catalog[1], catalog[2], seed=1)
        assert first == second
