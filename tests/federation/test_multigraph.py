"""Tests for federated multi-site storage (paper §5.3 / Table 7)."""

import pytest

from repro.core import tornado_graph
from repro.federation import (
    FederatedDecodeResult,
    FederatedSystem,
    federated_first_failure,
)
from repro.graphs import mirrored_graph, tornado_catalog_graph


@pytest.fixture(scope="module")
def two_site_tornado():
    g1 = tornado_catalog_graph(1)
    g2 = tornado_catalog_graph(2)
    return FederatedSystem([g1, g2])


class TestConstruction:
    def test_rejects_single_site(self):
        with pytest.raises(ValueError):
            FederatedSystem([mirrored_graph(4)])

    def test_rejects_mismatched_layout(self):
        with pytest.raises(ValueError):
            FederatedSystem([mirrored_graph(4), mirrored_graph(6)])

    def test_device_count(self, two_site_tornado):
        assert two_site_tornado.num_devices == 192

    def test_site_of(self, two_site_tornado):
        assert two_site_tornado.site_of(0) == (0, 0)
        assert two_site_tornado.site_of(96) == (1, 0)
        assert two_site_tornado.site_of(191) == (1, 95)
        with pytest.raises(ValueError):
            two_site_tornado.site_of(192)


class TestDecode:
    def test_no_loss(self, two_site_tornado):
        result = two_site_tornado.decode([])
        assert result.success
        assert result.lost_data == frozenset()

    def test_loss_of_one_whole_site(self, two_site_tornado):
        result = two_site_tornado.decode(range(96))
        assert result.success  # the other replica covers everything

    def test_loss_of_everything(self, two_site_tornado):
        result = two_site_tornado.decode(range(192))
        assert not result.success
        assert len(result.lost_data) == 48

    def test_exchange_rescues_cross_site_failure(self):
        """Both sites locally stuck, but on different data nodes."""
        g = mirrored_graph(2)  # data {0,1}, mirrors {2,3}
        system = FederatedSystem([g, g])
        # Site A loses block 0 + its mirror; site B loses block 1 + its
        # mirror: each site alone is dead, the exchange saves both.
        result = system.decode([0, 2, 4 + 1, 4 + 3])
        assert result.success
        assert result.rounds >= 1

    def test_joint_failure_when_same_pair_lost(self):
        g = mirrored_graph(2)
        system = FederatedSystem([g, g])
        result = system.decode([0, 2, 4 + 0, 4 + 2])
        assert not result.success
        assert result.lost_data == frozenset({0})

    def test_is_recoverable_wrapper(self, two_site_tornado):
        assert two_site_tornado.is_recoverable([0, 1, 2])


class TestFirstFailure:
    def test_four_copy_mirror_is_four(self):
        """Paper Table 7 row 1: Mirrored (4 copies) fails at 4."""
        m = mirrored_graph(48)
        system = FederatedSystem([m, m])
        result = federated_first_failure(system, site_max_size=3)
        assert result is not None
        assert result[0] == 4
        assert not system.is_recoverable(result[1])

    def test_same_tornado_graph_twice_is_ten(self):
        """Paper Table 7 row 2: same graph at both sites = 2 x 5."""
        g1 = tornado_catalog_graph(1)
        system = FederatedSystem([g1, g1])
        result = federated_first_failure(system, site_max_size=6)
        assert result is not None
        assert result[0] == 10
        assert not system.is_recoverable(result[1])

    def test_complementary_graphs_exceed_duplicated(self):
        """Paper Table 7 rows 3-5: complementary pairs beat 10 by far."""
        g1 = tornado_catalog_graph(1)
        g2 = tornado_catalog_graph(2)
        system = FederatedSystem([g1, g2])
        result = federated_first_failure(system, site_max_size=8)
        if result is not None:
            size, devices = result
            assert size > 10
            assert not system.is_recoverable(devices)

    def test_rejects_three_sites(self):
        m = mirrored_graph(4)
        system = FederatedSystem([m, m, m])
        with pytest.raises(ValueError):
            federated_first_failure(system)

    def test_detected_failure_is_actually_fatal(self):
        g = tornado_graph(16, seed=0)
        h = tornado_graph(16, seed=1)
        system = FederatedSystem([g, h])
        result = federated_first_failure(system, site_max_size=6)
        if result is not None:
            assert not system.is_recoverable(result[1])
