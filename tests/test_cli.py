"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import load_graphml, save_graphml
from repro.graphs import tornado_catalog_graph


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph3.graphml"
    save_graphml(tornado_catalog_graph(3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_certify_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.num_data == 48
        assert args.target == 5


class TestCertify:
    def test_writes_certified_graph(self, tmp_path, capsys):
        out = tmp_path / "new.graphml"
        code = main(
            ["certify", "--seed", "32", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        graph = load_graphml(out)
        from repro.core import first_failure

        assert first_failure(graph, limit=5) == 5
        assert "first failure" in capsys.readouterr().out


class TestAnalyze:
    def test_reports_first_failure(self, graph_file, capsys):
        assert main(["analyze", graph_file, "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "first failure: 5" in out


class TestProfile:
    def test_prints_metrics_and_saves(self, graph_file, tmp_path, capsys):
        out = tmp_path / "prof.json"
        code = main(
            [
                "profile",
                graph_file,
                "--samples",
                "300",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "first failure 5" in text
        from repro.sim import FailureProfile

        prof = FailureProfile.load(out)
        assert prof.num_devices == 96


class TestOverhead:
    def test_reports_overhead(self, graph_file, capsys):
        code = main(
            ["overhead", graph_file, "--trials", "200"]
        )
        assert code == 0
        assert "overhead" in capsys.readouterr().out


class TestReliability:
    def test_prints_table(self, capsys):
        code = main(["reliability", "--samples", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P(fail)" in out
        assert "RAID5" in out
        assert "tornado-graph-3" in out


class TestRender:
    def test_writes_svg_and_prints_report(
        self, graph_file, tmp_path, capsys
    ):
        out = tmp_path / "failure.svg"
        code = main(
            ["render", graph_file, "--missing", "0,1,2", "--out", str(out)]
        )
        assert code == 0
        assert out.read_text().startswith("<svg")
        assert "succeeded" in capsys.readouterr().out

    def test_no_missing_nodes(self, graph_file, tmp_path):
        out = tmp_path / "clean.svg"
        assert main(["render", graph_file, "--out", str(out)]) == 0
        assert out.exists()
