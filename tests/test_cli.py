"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import load_graphml, save_graphml
from repro.graphs import tornado_catalog_graph


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph3.graphml"
    save_graphml(tornado_catalog_graph(3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_certify_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.num_data == 48
        assert args.target == 5


class TestCertify:
    def test_writes_certified_graph(self, tmp_path, capsys):
        out = tmp_path / "new.graphml"
        code = main(
            ["certify", "--seed", "32", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        graph = load_graphml(out)
        from repro.core import first_failure

        assert first_failure(graph, limit=5) == 5
        assert "first failure" in capsys.readouterr().out


class TestAnalyze:
    def test_reports_first_failure(self, graph_file, capsys):
        assert main(["analyze", graph_file, "--max-k", "5"]) == 0
        out = capsys.readouterr().out
        assert "first failure: 5" in out


class TestProfile:
    def test_prints_metrics_and_saves(self, graph_file, tmp_path, capsys):
        out = tmp_path / "prof.json"
        code = main(
            [
                "profile",
                graph_file,
                "--samples",
                "300",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "first failure 5" in text
        from repro.sim import FailureProfile

        prof = FailureProfile.load(out)
        assert prof.num_devices == 96

    def test_jobs_and_exact_upto_flags(self, graph_file, capsys):
        code = main(
            [
                "profile",
                graph_file,
                "--samples",
                "200",
                "--jobs",
                "2",
                "--exact-upto",
                "4",
            ]
        )
        assert code == 0
        # With a shallow exact head the k=5 tail (~1e-7) is invisible to
        # 200 samples, so only assert the report shape, not the value.
        assert "first failure" in capsys.readouterr().out


class TestOverhead:
    def test_reports_overhead(self, graph_file, capsys):
        code = main(
            ["overhead", graph_file, "--trials", "200"]
        )
        assert code == 0
        assert "overhead" in capsys.readouterr().out


class TestReliability:
    def test_prints_table(self, capsys):
        code = main(["reliability", "--samples", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P(fail)" in out
        assert "RAID5" in out
        assert "tornado-graph-3" in out

    def test_seed_and_jobs_flags(self, capsys):
        code = main(
            ["reliability", "--samples", "200", "--seed", "7", "--jobs", "2"]
        )
        assert code == 0
        assert "P(fail)" in capsys.readouterr().out


class TestMission:
    def test_baseline_mission_survives(self, capsys):
        code = main(["mission", "--years", "0.5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome: all objects intact" in out
        assert "baseline failures only" in out

    def test_fault_plan_campaign(self, tmp_path, capsys):
        from repro.resilience import (
            FaultPlan,
            SilentCorruption,
            TransientOutages,
        )

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            faults=(
                TransientOutages(rate=0.01),
                SilentCorruption(rate=0.002),
            )
        ).save(plan_path)
        code = main(
            [
                "mission",
                "--years",
                "1",
                "--seed",
                "3",
                "--faults",
                str(plan_path),
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # loss is a report, not a crash
        assert "transient, corruption" in out
        assert "faults injected" in out

    def test_mission_runs_are_reproducible(self, capsys):
        argv = ["mission", "--years", "0.5", "--seed", "9", "--afr", "0.05"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_custom_graph_flag(self, graph_file, capsys):
        code = main(
            ["mission", "--graph", graph_file, "--years", "0.25"]
        )
        assert code == 0
        assert "tornado-graph-3" in capsys.readouterr().out

    def test_hazard_flag_swaps_the_binomial_baseline(self, capsys):
        code = main(
            [
                "mission",
                "--hazard",
                "weibull",
                "--shape",
                "2.0",
                "--afr",
                "0.05",
                "--years",
                "1",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        # Exit codes keep the contract: 0 intact, 1 loss — never a crash.
        assert code in (0, 1)
        assert "hazard" in out
        # The memoryless baseline goes inert; the curve takes over.
        assert "AFR 0.0%" in out

    def test_bathtub_hazard_with_infant_mortality(self, capsys):
        code = main(
            [
                "mission",
                "--hazard",
                "bathtub",
                "--infant-mortality",
                "0.3",
                "--afr",
                "0.05",
                "--years",
                "1",
                "--seed",
                "2",
            ]
        )
        assert code in (0, 1)
        assert "hazard" in capsys.readouterr().out

    def test_hazard_runs_are_reproducible(self, capsys):
        argv = [
            "mission",
            "--hazard",
            "weibull",
            "--afr",
            "0.1",
            "--years",
            "1",
            "--seed",
            "4",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_unknown_hazard_rejected(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["mission", "--hazard", "gamma"])
        assert exc_info.value.code == 2


class TestMetricsFlag:
    def test_profile_emits_jsonl_and_manifest(
        self, graph_file, tmp_path, capsys
    ):
        from repro.obs import read_jsonl

        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "profile",
                graph_file,
                "--samples",
                "200",
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        events = read_jsonl(metrics)  # every line parses as JSON
        assert events
        kinds = [e["event"] for e in events]
        assert "profile.cell" in kinds
        assert "metrics_summary" in kinds
        assert kinds[-1] == "run_manifest"
        manifest = events[-1]
        assert manifest["command"] == "repro profile"
        assert manifest["config"]["samples"] == 200
        assert manifest["wall_seconds"] >= 0
        summary = next(e for e in events if e["event"] == "metrics_summary")
        assert summary["counters"]["profile.graphs"] == 1

    def test_env_var_enables_metrics(
        self, graph_file, tmp_path, capsys, monkeypatch
    ):
        from repro.obs import read_jsonl

        metrics = tmp_path / "env-metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS", str(metrics))
        assert main(["analyze", graph_file, "--max-k", "4"]) == 0
        events = read_jsonl(metrics)
        assert events[-1]["event"] == "run_manifest"

    def test_no_metrics_no_file(self, graph_file, tmp_path, capsys):
        assert main(["analyze", graph_file, "--max-k", "4"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestExitCodes:
    """The CLI contract: 0 success, 1 operational failure, 2 usage error."""

    def test_operational_failure_exits_1(self, capsys):
        code = main(["analyze", "/no/such/graph.graphml"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_missing_fault_plan_exits_1(self, capsys):
        code = main(
            ["mission", "--years", "0.1", "--faults", "/no/plan.json"]
        )
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_usage_error_exits_2(self, graph_file, capsys):
        code = main(["profile", graph_file, "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("usage error:")
        assert "--checkpoint" in err

    def test_argparse_usage_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["frobnicate"])
        assert exc_info.value.code == 2

    def test_success_exits_0(self, graph_file):
        assert main(["analyze", graph_file, "--max-k", "4"]) == 0


class TestServeVerbs:
    def test_loadgen_smoke(self, tmp_path, capsys):
        out = tmp_path / "load.json"
        code = main(
            [
                "loadgen",
                "--requests",
                "25",
                "--rate",
                "2000",
                "--objects",
                "2",
                "--severity",
                "2",
                "--seed",
                "5",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "req/s" in text
        assert "25/25 completed" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["report"]["completed"] == 25
        assert payload["stats"]["counters"]["serve.completed"] == 25

    def test_loadgen_unbatched_flag(self, capsys):
        code = main(
            [
                "loadgen",
                "--requests",
                "10",
                "--rate",
                "5000",
                "--objects",
                "1",
                "--unbatched",
            ]
        )
        assert code == 0
        assert "[unbatched]" in capsys.readouterr().out

    def test_serve_smoke(self, capsys):
        code = main(
            ["serve", "--max-seconds", "0.2", "--objects", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 1 objects on 127.0.0.1:" in out


class TestRender:
    def test_writes_svg_and_prints_report(
        self, graph_file, tmp_path, capsys
    ):
        out = tmp_path / "failure.svg"
        code = main(
            ["render", graph_file, "--missing", "0,1,2", "--out", str(out)]
        )
        assert code == 0
        assert out.read_text().startswith("<svg")
        assert "succeeded" in capsys.readouterr().out

    def test_no_missing_nodes(self, graph_file, tmp_path):
        out = tmp_path / "clean.svg"
        assert main(["render", graph_file, "--out", str(out)]) == 0
        assert out.exists()


class TestTraceFlag:
    def test_loadgen_writes_trace_and_manifest(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "loadgen",
                "--requests",
                "10",
                "--rate",
                "2000",
                "--objects",
                "1",
                "--seed",
                "3",
                "--metrics",
                str(metrics),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        spans = [
            e for e in read_jsonl(trace) if e["event"] == "trace.span"
        ]
        names = {s["name"] for s in spans}
        assert {"loadgen.run", "serve.request", "serve.batch"} <= names
        # Service lifecycle manifest lands next to the metrics file.
        manifest = tmp_path / "m.jsonl.manifest.json"
        assert manifest.exists()
        import json

        assert json.loads(manifest.read_text())["command"] == "serve"
        # Summary reports service-side quantiles alongside loadgen's.
        assert "service-side latency" in capsys.readouterr().out

    def test_shared_path_interleaves_metrics_and_spans(
        self, graph_file, tmp_path, capsys
    ):
        from repro.obs import read_jsonl

        path = tmp_path / "both.jsonl"
        code = main(
            [
                "profile",
                graph_file,
                "--samples",
                "100",
                "--metrics",
                str(path),
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        kinds = {e["event"] for e in read_jsonl(path)}
        assert "trace.span" in kinds
        assert "run_manifest" in kinds

    def test_env_var_enables_tracing(
        self, graph_file, tmp_path, capsys, monkeypatch
    ):
        from repro.obs import read_jsonl

        trace = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["profile", graph_file, "--samples", "50"]) == 0
        spans = read_jsonl(trace)
        assert any(s["name"] == "profile.sweep" for s in spans)

    def test_trace_ids_deterministic_across_runs(
        self, graph_file, tmp_path, capsys
    ):
        from repro.obs import read_jsonl

        def run_ids(path):
            assert (
                main(
                    [
                        "profile",
                        graph_file,
                        "--samples",
                        "50",
                        "--seed",
                        "9",
                        "--trace",
                        str(path),
                    ]
                )
                == 0
            )
            return [
                (e["name"], e["trace_id"], e["span_id"])
                for e in read_jsonl(path)
            ]

        first = run_ids(tmp_path / "a.jsonl")
        second = run_ids(tmp_path / "b.jsonl")
        assert first and first == second


class TestObsVerbs:
    @pytest.fixture()
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        code = main(
            [
                "loadgen",
                "--requests",
                "8",
                "--rate",
                "2000",
                "--objects",
                "1",
                "--seed",
                "4",
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        return str(path)

    def test_trace_tree_orphan_free(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["obs", "trace-tree", trace_file]) == 0
        out = capsys.readouterr().out
        assert "loadgen.run" in out
        assert "serve.request" in out
        assert "orphaned spans: none" in out

    def test_trace_tree_filters_by_trace_id(self, trace_file, capsys):
        capsys.readouterr()
        assert (
            main(
                ["obs", "trace-tree", trace_file, "--trace-id", "feed"]
            )
            == 0
        )
        assert "no matching traces" in capsys.readouterr().out

    def test_report_renders_phase_table(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["obs", "report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "serve.request" in out
        assert "p99" in out

    def test_tail_filters_by_kind(self, trace_file, capsys):
        capsys.readouterr()
        assert (
            main(
                ["obs", "tail", trace_file, "--kind", "trace.span", "-n", "5"]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 5
        assert all("trace.span" in line for line in lines)

    def test_missing_file_exits_1(self, capsys):
        assert main(["obs", "report", "/no/such/file.jsonl"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    @pytest.mark.parametrize("verb", ["tail", "report", "trace-tree"])
    def test_missing_file_exits_1_for_every_verb(self, verb, capsys):
        assert main(["obs", verb, "/no/such/file.jsonl"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    @pytest.mark.parametrize("verb", ["tail", "report", "trace-tree"])
    def test_empty_file_exits_1(self, verb, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", verb, str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty" in err


class TestFleetTimelineVerbs:
    """obs top / slo / prom replay a persisted fleet timeline."""

    def write_timeline(self, path, down_last=False):
        import json as _json

        records = []
        for i in range(5):
            down = 1.0 if (down_last and i == 4) else 0.0
            records.append(
                {
                    "event": "fleet.sample",
                    "index": i,
                    "ts": float((i + 1) * 60),
                    "targets": {
                        "coordinator": {
                            "role": "coordinator",
                            "host": "127.0.0.1",
                            "port": 9000,
                            "up": True,
                            "stale": False,
                            "age": 0.0,
                            "error": None,
                        },
                        "node-0": {
                            "role": "node",
                            "host": "127.0.0.1",
                            "port": 9001,
                            "up": not down,
                            "stale": bool(down),
                            "age": 60.0 * down,
                            "error": "refused" if down else None,
                        },
                    },
                    "counters": {
                        "cluster.get.objects": 50 + 10 * i,
                        "cluster.repair.bytes": 4096,
                    },
                    "gauges": {
                        "fleet.targets.total": 2.0,
                        "fleet.targets.up": 2.0 - down,
                        "fleet.targets.down": down,
                        "fleet.repair.margin_min": 3.0,
                        "fleet.at_risk_stripes": 0.0,
                        "cluster.repair.healthy_margin": 3.0,
                    },
                    "histograms": {},
                }
            )
        path.write_text(
            "".join(_json.dumps(r) + "\n" for r in records)
        )
        return str(path)

    def test_top_once_renders_the_fleet(self, tmp_path, capsys):
        timeline = self.write_timeline(tmp_path / "t.jsonl")
        assert main(["obs", "top", timeline, "--once"]) == 0
        out = capsys.readouterr().out
        assert "targets: 2/2 up" in out
        assert "coordinator" in out and "node-0" in out
        assert "alerts: none firing" in out

    def test_slo_report_prints_status_json(self, tmp_path, capsys):
        import json as _json

        timeline = self.write_timeline(tmp_path / "t.jsonl")
        assert main(["obs", "slo", "report", timeline]) == 0
        out = capsys.readouterr().out
        status = _json.loads(out[out.index("{") :])
        assert "availability" in status["objectives"]
        assert status["samples"] == 5

    def test_slo_check_exit_codes(self, tmp_path, capsys):
        healthy = self.write_timeline(tmp_path / "ok.jsonl")
        assert main(["obs", "slo", "check", healthy]) == 0
        assert "slo check: ok" in capsys.readouterr().out
        dark = self.write_timeline(
            tmp_path / "bad.jsonl", down_last=True
        )
        assert main(["obs", "slo", "check", dark]) == 1
        captured = capsys.readouterr()
        assert "FIRING availability[fast]" in captured.out
        assert "FIRING availability[slow]" in captured.out
        assert "2 alert(s) firing" in captured.err

    def test_prom_renders_latest_sample(self, tmp_path, capsys):
        timeline = self.write_timeline(tmp_path / "t.jsonl")
        assert main(["obs", "prom", timeline]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_cluster_get_objects_total counter" in out
        assert "repro_fleet_targets_up 2" in out

    def test_missing_timeline_exits_1(self, capsys):
        assert main(["obs", "top", "/no/such/t.jsonl", "--once"]) == 1
        assert capsys.readouterr().err.startswith("error:")
        assert main(["obs", "slo", "check", "/no/such/t.jsonl"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_empty_timeline_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "top", str(path), "--once"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty" in err


class TestSitesVerbs:
    """Exit-code contract for the federation verbs (cheap paths only;
    the process-spawning loadgen/chaos run in CI's federation-smoke)."""

    def make_manifest(self, tmp_path):
        from repro.sites import (
            FederationManifest,
            PairingRecord,
            SiteAssignment,
        )

        path = tmp_path / "federation.json"
        FederationManifest(
            sites=(
                SiteAssignment("site-a", 2),
                SiteAssignment("site-b", 3),
            ),
            site_max_size=6,
            pairings=(PairingRecord("site-a", "site-b", None, 13),),
        ).save(path)
        return str(path)

    def test_sites_requires_subcommand(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["sites"])
        assert exc_info.value.code == 2

    def test_gateway_requires_manifest_flag(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["sites", "gateway"])
        assert exc_info.value.code == 2

    def test_gateway_malformed_attach_exits_2(self, tmp_path, capsys):
        manifest = self.make_manifest(tmp_path)
        code = main(
            [
                "sites",
                "gateway",
                "--manifest",
                manifest,
                "--attach",
                "nonsense",
            ]
        )
        assert code == 2
        assert "SITE=HOST:PORT" in capsys.readouterr().err

    def test_gateway_missing_manifest_exits_1(self, capsys):
        code = main(
            ["sites", "gateway", "--manifest", "/no/such/file.json"]
        )
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_status_against_dead_port_exits_1(self, capsys):
        code = main(
            ["sites", "status", "--port", "1"]  # nothing listens there
        )
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_coordinator_graph_and_catalog_conflict_exits_2(
        self, graph_file, capsys
    ):
        code = main(
            [
                "cluster",
                "coordinator",
                "--graph",
                graph_file,
                "--catalog",
                "2",
                "--max-seconds",
                "0.01",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
