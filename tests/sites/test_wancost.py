"""WAN cost model: the priced read ladder's shared arithmetic."""

import pytest

from repro.federation import FederatedSystem
from repro.graphs import tornado_catalog_graph
from repro.sites import WanCostModel, estimate_wan_read_cost


@pytest.fixture(scope="module")
def system():
    return FederatedSystem(
        [tornado_catalog_graph(2), tornado_catalog_graph(3)]
    )


class TestWanCostModel:
    def test_ladder_prices(self):
        model = WanCostModel()
        assert model.local_read() == 0.0
        assert model.remote_read(4096) == 4096.0
        assert model.coupled_read(8192) == 8192.0

    def test_byte_cost_scales_everything(self):
        model = WanCostModel(remote_byte_cost=2.0)
        assert model.remote_read(100) == 200.0
        assert model.coupled_read(100) == 200.0

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            WanCostModel(remote_byte_cost=-1.0)


class TestEstimate:
    def test_no_losses_means_every_read_is_local_and_free(self, system):
        estimate = estimate_wan_read_cost(
            system, 0, object_size=4096, samples=20
        )
        assert estimate.mean_wan_bytes == 0.0
        assert estimate.path_fractions["local"] == 1.0

    def test_fractions_partition_the_samples(self, system):
        estimate = estimate_wan_read_cost(
            system, 40, object_size=4096, samples=100, seed=3
        )
        assert sum(estimate.path_fractions.values()) == pytest.approx(1.0)

    def test_same_seed_same_estimate(self, system):
        kwargs = dict(object_size=4096, samples=100, seed=7)
        first = estimate_wan_read_cost(system, 30, **kwargs)
        second = estimate_wan_read_cost(system, 30, **kwargs)
        assert first == second

    def test_heavy_local_loss_moves_bytes_over_the_wan(self, system):
        # Concentrated home-site damage can't stay free forever: at a
        # fleet-wide k well past the local graph's critical sets some
        # samples must pay remote or coupled prices.
        estimate = estimate_wan_read_cost(
            system, 60, object_size=4096, samples=200, seed=0
        )
        assert estimate.path_fractions["local"] < 1.0
        assert estimate.mean_wan_bytes > 0.0

    def test_rejects_out_of_range_k(self, system):
        with pytest.raises(ValueError):
            estimate_wan_read_cost(
                system, system.num_devices + 1, object_size=4096
            )
