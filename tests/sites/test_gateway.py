"""Gateway end-to-end in-process: the priced read ladder and repair.

Two real (in-process) cluster sites under one ``FederationGateway``:
puts replicate to both, reads walk local → remote → coupled with WAN
bytes metered per rung, and repair re-injects a wiped object across
the WAN.  The multi-process variants (blackout via SIGKILL, WAL
recovery) live in ``repro sites loadgen`` and CI's federation-smoke.
"""

import asyncio
import hashlib

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, StorageNode, start_storage_node
from repro.cluster.coordinator import start_coordinator
from repro.storage.archive import DataLossError
from repro.graphs import tornado_catalog_graph
from repro.serve.protocol import BlockDeleteRequest, BlockListRequest
from repro.sites import (
    FederationGateway,
    FederationManifest,
    PairingRecord,
    SiteAssignment,
    find_coupled_witness,
)
from repro.storage.blockstore import parse_block_key

GRAPH_NUMBERS = {"site-a": 2, "site-b": 3}


def handbuilt_manifest():
    return FederationManifest(
        sites=tuple(
            SiteAssignment(sid, number)
            for sid, number in GRAPH_NUMBERS.items()
        ),
        site_max_size=6,
        pairings=(PairingRecord("site-a", "site-b", None, 13),),
    )


class Federation:
    """Two in-process sites plus the gateway fronting them."""

    def __init__(self, gateway, coordinators, servers):
        self.gateway = gateway
        self.coordinators = coordinators
        self.servers = servers  # site -> [coordinator server, node servers...]

    @classmethod
    async def start(cls, block_size=64, nodes_per_site=3):
        gateway = FederationGateway(
            handbuilt_manifest(), block_size=block_size
        )
        coordinators, servers = {}, {}
        for sid, number in GRAPH_NUMBERS.items():
            coordinator = ClusterCoordinator(
                tornado_catalog_graph(number), block_size=block_size
            )
            server = await start_coordinator(coordinator, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            servers[sid] = [server]
            for i in range(nodes_per_site):
                node_id = f"{sid}-n{i}"
                node_server = await start_storage_node(
                    StorageNode(node_id, seed=i), port=0
                )
                nhost, nport = node_server.sockets[0].getsockname()[:2]
                await coordinator.register(node_id, nhost, nport)
                servers[sid].append(node_server)
            gateway.attach_site(sid, host, port)
            coordinators[sid] = coordinator
        return cls(gateway, coordinators, servers)

    async def kill_site(self, site_id):
        """SIGKILL analogue: every server gone, pooled link dropped."""
        for server in self.servers[site_id]:
            server.close()
            await server.wait_closed()
        self.gateway._reset_connection(self.gateway.links[site_id])

    async def erase_witness(self, site_id, name, erased):
        """Delete ``name``'s blocks on the witness graph-node set."""
        coordinator = self.coordinators[site_id]
        for link in coordinator.nodes.values():
            keys = await coordinator._rpc(
                link, BlockListRequest(prefix=f"{name}/")
            )
            for key in keys.keys:
                _, _, node = parse_block_key(key)
                if node in erased:
                    await coordinator._rpc(
                        link, BlockDeleteRequest(key=key)
                    )

    async def close(self):
        for server_list in self.servers.values():
            for server in server_list:
                server.close()


def run(coro):
    return asyncio.run(coro)


def payload_bytes(n, seed=0):
    return np.random.default_rng(seed).bytes(n)


class TestPutAndLocalRead:
    def test_put_replicates_to_every_site_and_reads_stay_local(self):
        async def check():
            fed = await Federation.start()
            gw = fed.gateway
            payload = payload_bytes(5000)
            info = await gw.put("obj", payload)
            assert sorted(info["sites"]) == ["site-a", "site-b"]
            assert info["home"] == gw.home_site("obj")
            # The non-home copy is steady-state replication, not WAN
            # anomaly traffic.
            assert gw.replicate_bytes == len(payload)
            assert gw.wan_bytes == 0

            got = await gw.get("obj", want_payload=True)
            assert got.payload == payload
            assert gw.reads["local"] == 1
            assert gw.wan_bytes == 0
            await fed.close()

        run(check())

    def test_both_sites_hold_a_decodable_copy(self):
        async def check():
            fed = await Federation.start()
            payload = payload_bytes(5000)
            await fed.gateway.put("obj", payload)
            for coordinator in fed.coordinators.values():
                got = await coordinator.get("obj", want_payload=True)
                assert got.payload == payload
            await fed.close()

        run(check())


class TestReadLadder:
    def test_dark_home_site_fails_over_to_remote_with_metered_wan(self):
        async def check():
            fed = await Federation.start()
            gw = fed.gateway
            payload = payload_bytes(5000)
            await gw.put("obj", payload)
            home = gw.home_site("obj")
            await fed.kill_site(home)

            got = await gw.get("obj", want_payload=True)
            assert got.payload == payload
            assert gw.reads["remote"] == 1
            assert gw.read_wan_bytes == len(payload)
            assert gw.wan_bytes_by_site != {}
            await fed.close()

        run(check())

    def test_coupled_decode_serves_what_neither_site_can(self):
        async def check():
            fed = await Federation.start()
            gw = fed.gateway
            payload = payload_bytes(5000)
            await gw.put("obj", payload)

            witness = find_coupled_witness(
                tornado_catalog_graph(GRAPH_NUMBERS["site-a"]),
                tornado_catalog_graph(GRAPH_NUMBERS["site-b"]),
                seed=1,
            )
            assert witness is not None
            for sid, erased in zip(GRAPH_NUMBERS, witness):
                await fed.erase_witness(sid, "obj", erased)

            # Neither site decodes alone...
            for coordinator in fed.coordinators.values():
                with pytest.raises(DataLossError):
                    await coordinator.get("obj")
            # ...but the federation still serves the read, over the WAN.
            got = await gw.get("obj", want_payload=True)
            assert got.payload == payload
            assert got.sha256 == hashlib.sha256(payload).hexdigest()
            assert gw.reads["coupled"] == 1
            assert gw.read_wan_bytes > 0
            await fed.close()

        run(check())


class TestRepair:
    def test_repair_reinjects_the_witness_damage_over_the_wan(self):
        async def check():
            fed = await Federation.start()
            gw = fed.gateway
            payload = payload_bytes(5000)
            await gw.put("obj", payload)
            witness = find_coupled_witness(
                tornado_catalog_graph(GRAPH_NUMBERS["site-a"]),
                tornado_catalog_graph(GRAPH_NUMBERS["site-b"]),
                seed=1,
            )
            assert witness is not None
            for sid, erased in zip(GRAPH_NUMBERS, witness):
                await fed.erase_witness(sid, "obj", erased)

            summary = await gw.repair("drain")
            assert summary["reinjected"], summary
            assert gw.repair_wan_bytes > 0
            # Repair restored single-site decodability everywhere.
            for coordinator in fed.coordinators.values():
                got = await coordinator.get("obj", want_payload=True)
                assert got.payload == payload
            await fed.close()

        run(check())


class TestStatus:
    def test_status_reports_sites_wan_and_the_floor(self):
        async def check():
            fed = await Federation.start()
            gw = fed.gateway
            await gw.put("obj", payload_bytes(5000))
            status = await gw.status()
            assert set(status["sites"]) == set(GRAPH_NUMBERS)
            for sid, entry in status["sites"].items():
                assert entry["alive"] is True
                assert entry["graph"] == GRAPH_NUMBERS[sid]
            assert status["objects"] == 1
            assert status["first_failure_floor"] == 13
            assert status["wan"]["total_bytes"] == 0
            assert status["wan"]["replicate_bytes"] == 5000
            await fed.close()

        run(check())


class TestMetricsScrapePlane:
    def test_gateway_snapshot_over_the_wire(self):
        from repro.serve.client import SitesClient
        from repro.sites import start_gateway

        async def serve_and_scrape():
            fed = await Federation.start()
            await fed.gateway.put("obj", payload_bytes(5000))
            server = await start_gateway(fed.gateway, port=0)
            host, port = server.sockets[0].getsockname()[:2]

            def scrape():
                with SitesClient(host, port) as client:
                    snap = client.metrics_snapshot()
                    assert snap.role == "gateway"
                    assert snap.source == "gateway"
                    gauges = snap.snapshot["gauges"]
                    assert gauges["sites.objects"] == 1.0
                    assert gauges["sites.first_failure_floor"] == 13.0
                    counters = snap.snapshot["counters"]
                    assert counters["sites.wan.bytes"] >= 0
                    # Legacy text op still answers on the same port.
                    assert isinstance(client.metrics(), str)

            await asyncio.to_thread(scrape)
            server.close()
            await fed.close()

        run(serve_and_scrape())
