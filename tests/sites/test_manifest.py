"""Federation manifests: cooperative graph assignment, persistence."""

import pytest

from repro.sites import (
    FederationManifest,
    PairingRecord,
    SiteAssignment,
    assign_site_graphs,
)


def make_manifest(site_ids=("site-a", "site-b"), **kwargs):
    kwargs.setdefault("site_max_size", 6)
    kwargs.setdefault("curve_samples", 100)
    kwargs.setdefault("seed", 0)
    return assign_site_graphs(list(site_ids), **kwargs)


@pytest.fixture(scope="module")
def manifest():
    return make_manifest()


class TestAssignment:
    def test_two_sites_get_the_complementary_catalog_pair(self, manifest):
        numbers = sorted(
            a.graph_number for a in manifest.sites
        )
        # The measured catalog winner: graphs 2 and 3 (no joint failure
        # detected within the probed bound).
        assert numbers == [2, 3]

    def test_assignment_is_deterministic_across_calls(self, manifest):
        again = make_manifest()
        assert again.to_dict() == manifest.to_dict()

    def test_first_failure_floor_beats_single_graph(self, manifest):
        # An undetected pairing at bound B floors at 2B + 1; either way
        # the federation must clear the duplicated-graph value (10).
        assert manifest.first_failure_floor() > 10

    def test_three_sites_extend_greedily_from_the_catalog(self):
        manifest = make_manifest(("s0", "s1", "s2"))
        assert len(manifest.sites) == 3
        assert all(
            a.graph_number in (1, 2, 3) for a in manifest.sites
        )
        # Every unordered pair is recorded.
        assert len(manifest.pairings) == 3

    def test_rejects_single_site(self):
        with pytest.raises(ValueError):
            make_manifest(("lonely",))

    def test_rejects_duplicate_site_ids(self):
        with pytest.raises(ValueError):
            make_manifest(("twin", "twin"))


class TestManifestModel:
    def test_roundtrips_through_json(self, manifest, tmp_path):
        path = tmp_path / "federation.json"
        manifest.save(path)
        loaded = FederationManifest.load(path)
        assert loaded == manifest

    def test_assignment_lookup(self, manifest):
        assignment = manifest.assignment("site-a")
        assert assignment.site_id == "site-a"
        with pytest.raises(KeyError):
            manifest.assignment("nowhere")

    def test_system_spans_every_site(self, manifest):
        system = manifest.system()
        assert system.num_sites == len(manifest.sites)
        assert system.num_devices == sum(
            a.graph.num_nodes for a in manifest.sites
        )

    def test_graphs_resolve_from_the_catalog(self, manifest):
        graphs = manifest.graphs()
        for assignment in manifest.sites:
            graph = graphs[assignment.site_id]
            assert graph.num_nodes == 96

    def test_handbuilt_manifest_validates(self):
        manifest = FederationManifest(
            sites=(
                SiteAssignment("a", 2),
                SiteAssignment("b", 3),
            ),
            site_max_size=6,
            pairings=(
                PairingRecord("a", "b", None, 13),
            ),
        )
        assert manifest.first_failure_floor() == 13
        with pytest.raises(ValueError):
            FederationManifest(
                sites=(SiteAssignment("a", 2),),
                site_max_size=6,
                pairings=(),
            )
