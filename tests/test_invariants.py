"""Cross-module invariants, property-tested across graph families.

These tests pin down the relationships that make the reproduction
trustworthy: every decoder agrees with every other where their domains
overlap, the exact counting machinery agrees with brute force, and all
of it holds across every family the paper compares — not just the
Tornado graphs the pipeline was tuned on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPeelingDecoder,
    MLDecoder,
    PeelingDecoder,
    TornadoCodec,
    cascade_graph_from_degrees,
    from_networkx,
    is_stopping_set,
    minimal_bad_stopping_sets,
    to_networkx,
    tornado_graph,
)
from repro.graphs import (
    mirrored_graph,
    regular_graph,
    replicated_graph,
    striped_graph,
)
from repro.analysis import graph_stats


def family_graph(family: int, seed: int):
    """A graph from one of the paper's families, by index."""
    builders = [
        lambda: tornado_graph(16, seed=seed),
        lambda: cascade_graph_from_degrees(16, 3, seed=seed),
        lambda: regular_graph(12, 3, seed=seed),
        lambda: mirrored_graph(8),
        lambda: striped_graph(12),
        lambda: replicated_graph(6, 3),
    ]
    return builders[family % len(builders)]()


families = st.integers(0, 5)
seeds = st.integers(0, 200)


@settings(max_examples=40, deadline=None)
@given(family=families, seed=seeds, data=st.data())
def test_decoder_hierarchy(family, seed, data):
    """scalar == batch, and ML dominates peeling, on every family."""
    g = family_graph(family, seed)
    rng = np.random.default_rng(seed)
    k = data.draw(st.integers(0, g.num_nodes))
    missing = rng.choice(g.num_nodes, size=k, replace=False)

    scalar = PeelingDecoder(g).is_recoverable(missing)
    batch = bool(
        BatchPeelingDecoder(g).decode_missing_sets([missing.tolist()])[0]
    )
    assert scalar == batch
    if scalar:
        assert MLDecoder(g).is_recoverable(missing)


@settings(max_examples=30, deadline=None)
@given(family=families, seed=seeds, data=st.data())
def test_residual_is_always_stopping_set(family, seed, data):
    g = family_graph(family, seed)
    rng = np.random.default_rng(seed + 1)
    k = data.draw(st.integers(0, g.num_nodes))
    missing = rng.choice(g.num_nodes, size=k, replace=False)
    res = PeelingDecoder(g).decode(missing)
    assert is_stopping_set(g, res.residual)
    assert res.residual <= set(missing.tolist())


@settings(max_examples=25, deadline=None)
@given(family=families, seed=seeds)
def test_graphml_roundtrip_every_family(family, seed):
    g = family_graph(family, seed)
    g2 = from_networkx(to_networkx(g))
    assert g2.constraints == g.constraints
    assert g2.data_nodes == g.data_nodes
    assert g2.levels == g.levels


@settings(max_examples=25, deadline=None)
@given(family=families, seed=seeds)
def test_stats_are_consistent(family, seed):
    g = family_graph(family, seed)
    stats = graph_stats(g)
    assert stats.num_edges == g.num_edges
    assert sum(lv.num_edges for lv in stats.levels) == g.num_edges
    assert stats.num_data + stats.num_checks == g.num_nodes


@settings(max_examples=15, deadline=None)
@given(
    family=st.integers(0, 2),  # families with checks and >1 constraint
    seed=seeds,
    payload_seed=st.integers(0, 1000),
)
def test_codec_roundtrip_under_max_guaranteed_loss(
    family, seed, payload_seed
):
    """Losing strictly fewer nodes than the first failure must always
    round-trip real data, for any family."""
    g = family_graph(family, seed)
    sets = minimal_bad_stopping_sets(g, max_size=4)
    ff = min((len(s) for s in sets), default=5)
    loss = ff - 1
    rng = np.random.default_rng(payload_seed)
    codec = TornadoCodec(g, block_size=16)
    data = rng.integers(0, 256, (g.num_data, 16), dtype=np.uint8)
    blocks = codec.encode_blocks(data)
    present = np.ones(g.num_nodes, dtype=bool)
    if loss > 0:
        present[rng.choice(g.num_nodes, size=loss, replace=False)] = False
    out = codec.decode_blocks(blocks, present)
    np.testing.assert_array_equal(out, data)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 100))
def test_minimal_sets_are_exactly_the_failure_boundary(seed):
    """Every minimal set fails; every strict subset of one recovers."""
    g = tornado_graph(16, seed=seed)
    dec = PeelingDecoder(g)
    for s in minimal_bad_stopping_sets(g, max_size=4):
        assert not dec.is_recoverable(s)
        for drop in s:
            assert dec.is_recoverable(set(s) - {drop})


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 60), afr=st.floats(0.001, 0.2))
def test_reliability_bounds_and_afr_monotonicity(seed, afr):
    from repro.reliability import system_failure_probability
    from repro.sim import profile_graph

    g = tornado_graph(16, seed=seed % 4)
    prof = profile_graph(g, samples_per_k=100, seed=seed, exact_upto=3)
    p1 = system_failure_probability(prof, afr)
    p2 = system_failure_probability(prof, min(afr * 2, 1.0))
    assert 0.0 <= p1 <= 1.0
    assert p2 >= p1 - 1e-12
