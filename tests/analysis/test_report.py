"""Tests for reporting and the profile cache."""

import numpy as np
import pytest

from repro.analysis import (
    ProfileCache,
    ascii_curves,
    format_table,
    markdown_table,
    profile_summary_table,
)
from repro.raid import mirrored_system
from repro.sim import FailureProfile


@pytest.fixture
def profile():
    return FailureProfile.from_analytic(mirrored_system(48))


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(
            ["Name", "Value"], [["alpha", 1], ["b", 22222]]
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("Name")
        assert set(lines[1]) <= {"-", " "}

    def test_markdown_table(self):
        out = markdown_table(["A", "B"], [[1, 2]])
        assert out.splitlines()[0] == "| A | B |"
        assert "| 1 | 2 |" in out

    def test_profile_summary_contains_metrics(self, profile):
        out = profile_summary_table([profile])
        assert "First Failure" in out
        assert "2" in out  # mirror first failure

    def test_profile_summary_markdown_mode(self, profile):
        out = profile_summary_table([profile], markdown=True)
        assert out.startswith("|")


class TestAsciiCurves:
    def test_contains_legend_and_axis(self, profile):
        out = ascii_curves([profile])
        assert "A = Mirrored 48x2" in out
        assert "offline devices" in out

    def test_multiple_profiles_get_distinct_glyphs(self, profile):
        p2 = FailureProfile(
            system_name="other",
            num_devices=profile.num_devices,
            num_data=profile.num_data,
            fail_fraction=np.ones(profile.num_devices + 1),
            samples=np.zeros(profile.num_devices + 1, dtype=np.int64),
        )
        out = ascii_curves([profile, p2])
        assert "B = other" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_curves([])

    def test_k_max_truncates(self, profile):
        narrow = ascii_curves([profile], k_max=20)
        wide = ascii_curves([profile])
        assert len(narrow.splitlines()[0]) < len(wide.splitlines()[0])


class TestProfileCache:
    def test_miss_then_hit(self, tmp_path, small_tornado):
        cache = ProfileCache(tmp_path)
        p1 = cache.get(small_tornado, samples_per_k=50, seed=0)
        assert list(tmp_path.glob("*.json"))
        p2 = cache.get(small_tornado, samples_per_k=50, seed=0)
        np.testing.assert_array_equal(p1.fail_fraction, p2.fail_fraction)

    @staticmethod
    def _profiles(tmp_path):
        # Cache writes also store .manifest.json sidecars; count only
        # the profile files themselves.
        return [
            p
            for p in tmp_path.glob("*.json")
            if not p.name.endswith(".manifest.json")
        ]

    def test_key_varies_with_samples(self, tmp_path, small_tornado):
        cache = ProfileCache(tmp_path)
        cache.get(small_tornado, samples_per_k=50, seed=0)
        cache.get(small_tornado, samples_per_k=60, seed=0)
        assert len(self._profiles(tmp_path)) == 2

    def test_structure_participates_in_key(self, tmp_path):
        from repro.core import tornado_graph

        cache = ProfileCache(tmp_path)
        g1 = tornado_graph(16, seed=0, name="same-name")
        g2 = tornado_graph(16, seed=1, name="same-name")
        cache.get(g1, samples_per_k=50, seed=0)
        cache.get(g2, samples_per_k=50, seed=0)
        assert len(self._profiles(tmp_path)) == 2

    def test_clear(self, tmp_path, small_tornado):
        cache = ProfileCache(tmp_path)
        cache.get(small_tornado, samples_per_k=50, seed=0)
        assert cache.clear() == 1
        assert not list(tmp_path.glob("*.json"))


class TestDefaultCache:
    def test_env_var_overrides_location(self, tmp_path, monkeypatch):
        from repro.analysis import default_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        cache = default_cache()
        assert str(cache.root).endswith("custom")
        assert cache.root.exists()

    def test_default_lands_in_repo_benchmarks(self, monkeypatch):
        from repro.analysis import default_cache

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        cache = default_cache()
        assert cache.root.name == "data"
        assert cache.root.parent.name == "benchmarks"
