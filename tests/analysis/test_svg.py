"""Tests for SVG rendering of graphs and curves."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import save_svg, svg_curves, svg_failure_graph
from repro.core import tornado_graph
from repro.graphs import mirrored_graph
from repro.raid import mirrored_system
from repro.sim import FailureProfile

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestFailureGraph:
    def test_well_formed_xml(self):
        g = tornado_graph(16, seed=0)
        root = parse(svg_failure_graph(g, [0, 1]))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_shape_per_node(self):
        g = tornado_graph(16, seed=0)
        root = parse(svg_failure_graph(g, []))
        circles = root.findall(f"{SVG_NS}circle")
        rects = root.findall(f"{SVG_NS}rect")
        # one background rect plus one square per check node
        assert len(circles) == g.num_data
        assert len(rects) == 1 + g.num_checks

    def test_one_line_per_edge(self):
        g = tornado_graph(16, seed=0)
        root = parse(svg_failure_graph(g, []))
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == g.num_edges

    def test_failure_marks_stuck_nodes_red(self):
        g = mirrored_graph(4)
        root = parse(svg_failure_graph(g, [0, 4]))  # whole pair lost
        reds = [
            el
            for el in root.iter()
            if el.get("fill") == "#c62828"
        ]
        assert len(reds) == 2  # node 0 and its mirror
        text = ET.tostring(root, encoding="unicode")
        assert "FAILED" in text

    def test_success_labelled(self):
        g = mirrored_graph(4)
        text = svg_failure_graph(g, [0])
        assert "recovered" in text

    def test_save(self, tmp_path):
        g = tornado_graph(16, seed=0)
        path = tmp_path / "graph.svg"
        save_svg(svg_failure_graph(g, [3]), path)
        assert path.read_text().startswith("<svg")


class TestCurves:
    def make_profiles(self):
        return [FailureProfile.from_analytic(mirrored_system(48))]

    def test_well_formed(self):
        root = parse(svg_curves(self.make_profiles()))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_profile(self):
        profs = self.make_profiles() * 3
        root = parse(svg_curves(profs))
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 3

    def test_legend_names_present(self):
        text = svg_curves(self.make_profiles())
        assert "Mirrored 48x2" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_curves([])

    def test_k_max_limits_points(self):
        prof = self.make_profiles()[0]
        root = parse(svg_curves([prof], k_max=10))
        poly = root.find(f"{SVG_NS}polyline")
        assert len(poly.get("points").split()) == 11
