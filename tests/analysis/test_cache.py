"""ProfileCache keying, manifests, and metrics tests."""

import numpy as np
import pytest

from repro.analysis import ProfileCache
from repro.graphs import tornado_catalog_graph
from repro.obs import RunManifest, capture


@pytest.fixture(scope="module")
def graph():
    return tornado_catalog_graph(3)


@pytest.fixture
def cache(tmp_path):
    return ProfileCache(tmp_path / "cache")


class TestKeying:
    def test_second_get_hits_cache(self, cache, graph):
        a = cache.get(graph, samples_per_k=50, seed=0)
        b = cache.get(graph, samples_per_k=50, seed=0)
        np.testing.assert_array_equal(a.fail_fraction, b.fail_fraction)
        profiles = [
            p
            for p in cache.root.glob("*.json")
            if not p.name.endswith(".manifest.json")
        ]
        assert len(profiles) == 1

    def test_exact_upto_no_longer_collides(self, cache, graph):
        """Regression: differing exact_upto used to share a cache entry.

        With exact_upto=6 the k<=6 head is exact (zero failures for a
        first-failure-5 graph are impossible: k=5 has a tiny exact
        probability); with exact_upto=2 the head beyond k=2 is sampled
        at 50 samples and k=5's ~1e-7 probability reads as zero.  The
        old key ignored exact_upto, so whichever call ran first
        poisoned the other.
        """
        full = cache.get(graph, samples_per_k=50, seed=0, exact_upto=6)
        shallow = cache.get(graph, samples_per_k=50, seed=0, exact_upto=2)
        assert full.fail_fraction[5] > 0  # exact head sees the 1e-7 tail
        assert full.samples[5] == 0
        assert shallow.samples[5] == 50  # sampled, not exact
        profiles = [
            p
            for p in cache.root.glob("*.json")
            if not p.name.endswith(".manifest.json")
        ]
        assert len(profiles) == 2  # distinct entries, no collision

    def test_ks_participates_in_key(self, cache, graph):
        cache.get(graph, samples_per_k=50, seed=0, ks=[10, 20])
        cache.get(graph, samples_per_k=50, seed=0, ks=[10, 30])
        profiles = [
            p
            for p in cache.root.glob("*.json")
            if not p.name.endswith(".manifest.json")
        ]
        assert len(profiles) == 2

    def test_clear_counts_profiles_only(self, cache, graph):
        cache.get(graph, samples_per_k=50, seed=0)
        assert cache.clear() == 1
        assert list(cache.root.glob("*.json")) == []


class TestManifestSidecar:
    def test_write_stores_manifest(self, cache, graph):
        cache.get(graph, samples_per_k=50, seed=3, exact_upto=4)
        manifest = cache.manifest_for(
            graph, samples_per_k=50, seed=3, exact_upto=4
        )
        assert isinstance(manifest, RunManifest)
        assert manifest.seed == 3
        assert manifest.config["samples_per_k"] == 50
        assert manifest.config["exact_upto"] == 4
        assert manifest.wall_seconds is not None

    def test_missing_manifest_is_none(self, cache, graph):
        assert (
            cache.manifest_for(graph, samples_per_k=999, seed=9) is None
        )


class TestMetrics:
    def test_hit_miss_counters(self, cache, graph):
        with capture() as reg:
            cache.get(graph, samples_per_k=50, seed=0)
            cache.get(graph, samples_per_k=50, seed=0)
        assert reg.counter("cache.misses").value == 1
        assert reg.counter("cache.hits").value == 1

    def test_invalidation_counter(self, cache, graph):
        cache.get(graph, samples_per_k=50, seed=0)
        with capture() as reg:
            cache.clear()
        assert reg.counter("cache.invalidations").value == 1
