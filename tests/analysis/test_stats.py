"""Tests for graph structural statistics."""

import pytest

from repro.analysis import graph_stats
from repro.core import tornado_graph
from repro.graphs import mirrored_graph, striped_graph


class TestGraphStats:
    def test_tornado_summary(self):
        g = tornado_graph(48, seed=0)
        stats = graph_stats(g)
        assert stats.num_nodes == 96
        assert stats.num_data == 48
        assert stats.num_checks == 48
        assert stats.num_edges == g.num_edges
        assert len(stats.levels) == 4
        assert stats.average_left_degree == pytest.approx(
            g.average_left_degree()
        )

    def test_level_shapes_follow_cascade(self):
        g = tornado_graph(48, seed=0)
        stats = graph_stats(g)
        assert [lv.num_checks for lv in stats.levels] == [24, 12, 6, 6]
        assert stats.levels[0].num_lefts == 48
        # edges per level sum to the graph total
        assert sum(lv.num_edges for lv in stats.levels) == g.num_edges

    def test_histograms_sum_to_counts(self):
        g = tornado_graph(48, seed=0)
        for lv in graph_stats(g).levels:
            assert sum(lv.left_degree_histogram.values()) == lv.num_lefts
            assert sum(lv.check_degree_histogram.values()) == lv.num_checks

    def test_mirror_stats(self):
        stats = graph_stats(mirrored_graph(4))
        assert stats.average_left_degree == 1.0
        assert stats.max_left_degree == 1
        assert stats.levels[0].average_check_degree == 1.0

    def test_striped_stats(self):
        stats = graph_stats(striped_graph(6))
        assert stats.num_edges == 0
        assert stats.levels == ()
        assert stats.average_left_degree == 0.0

    def test_describe_format(self):
        text = graph_stats(tornado_graph(16, seed=1)).describe()
        assert "level 0" in text
        assert "avg left degree" in text
