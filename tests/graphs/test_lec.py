"""Tests for the LEC-style automated graph family."""

import pytest

from repro.core import first_failure
from repro.graphs import lec_like_graph


class TestLecLikeGraph:
    def test_structure(self):
        cand = lec_like_graph(24, seed=0, candidates=4)
        g = cand.graph
        assert g.num_nodes == 48
        assert g.num_data == 24
        assert len(g.levels) == 1  # single-stage by design

    def test_degree_band_respected(self):
        cand = lec_like_graph(24, seed=0, candidates=4, degree_band=(3, 4))
        counts = [0] * cand.graph.num_nodes
        for con in cand.graph.constraints:
            for l in con.lefts:
                counts[l] += 1
        for d in cand.graph.data_nodes:
            assert 3 <= counts[d] <= 4

    def test_score_matches_analysis(self):
        cand = lec_like_graph(48, seed=0, candidates=6)
        assert first_failure(cand.graph, limit=5) == cand.first_failure

    def test_more_candidates_never_worse(self):
        small = lec_like_graph(48, seed=0, candidates=3)
        large = lec_like_graph(48, seed=0, candidates=12)
        assert large.score >= small.score

    def test_deterministic(self):
        a = lec_like_graph(24, seed=5, candidates=5)
        b = lec_like_graph(24, seed=5, candidates=5)
        assert a.graph == b.graph

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lec_like_graph(24, candidates=0)
        with pytest.raises(ValueError):
            lec_like_graph(24, degree_band=(1, 3))
        with pytest.raises(ValueError):
            lec_like_graph(24, degree_band=(5, 3))
