"""Tests for comparison graph families and the precompiled catalog."""

import pytest

from repro.core import PeelingDecoder, first_failure
from repro.graphs import (
    NUM_DATA_96,
    TORNADO_SEEDS,
    altered_tornado_doubled,
    altered_tornado_shifted,
    catalog_96_node_systems,
    mirrored_graph,
    regular_graph,
    replicated_graph,
    striped_graph,
    tornado_catalog_graph,
)


class TestMirrored:
    def test_structure(self):
        g = mirrored_graph(4)
        assert g.num_nodes == 8
        assert g.num_data == 4
        assert all(len(c.lefts) == 1 for c in g.constraints)

    def test_pair_loss_is_fatal_single_is_not(self):
        g = mirrored_graph(4)
        dec = PeelingDecoder(g)
        assert dec.is_recoverable([2])
        assert dec.is_recoverable([2, 7])
        assert not dec.is_recoverable([2, 6])

    def test_rejects_zero_pairs(self):
        with pytest.raises(ValueError):
            mirrored_graph(0)


class TestStriped:
    def test_no_redundancy(self):
        g = striped_graph(6)
        assert g.num_checks == 0
        assert first_failure(g, limit=1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            striped_graph(0)


class TestReplicated:
    def test_two_copies_equals_mirror(self):
        r = replicated_graph(4, 2)
        m = mirrored_graph(4)
        assert r.num_nodes == m.num_nodes
        assert first_failure(r, limit=2) == 2

    def test_four_copies_survive_three_losses(self):
        g = replicated_graph(4, 4)
        dec = PeelingDecoder(g)
        # all three copies of block 0: 4, 8, 12 hold copies of 0
        copies_of_0 = [c.check for c in g.constraints if c.lefts == (0,)]
        assert len(copies_of_0) == 3
        assert dec.is_recoverable(copies_of_0)
        assert not dec.is_recoverable([0, *copies_of_0])
        assert first_failure(g, limit=4) == 4

    def test_rejects_single_copy(self):
        with pytest.raises(ValueError):
            replicated_graph(4, 1)


class TestRegular:
    def test_every_data_node_has_uniform_degree(self):
        g = regular_graph(24, 4, seed=0)
        counts = [0] * g.num_nodes
        for con in g.constraints:
            for l in con.lefts:
                counts[l] += 1
        assert all(counts[d] == 4 for d in g.data_nodes)

    def test_single_level(self):
        g = regular_graph(24, 4, seed=0)
        assert len(g.levels) == 1

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            regular_graph(24, 1, seed=0)
        with pytest.raises(ValueError):
            regular_graph(4, 9, num_checks=4, seed=0)

    def test_custom_check_count(self):
        g = regular_graph(24, 3, num_checks=12, seed=0)
        assert g.num_nodes == 36


class TestAltered:
    def test_doubled_has_higher_degree(self):
        base = tornado_catalog_graph(3, adjusted=False)
        dbl = altered_tornado_doubled(NUM_DATA_96, seed=2)
        assert dbl.average_left_degree() > base.average_left_degree()

    def test_shifted_constructs_96_nodes(self):
        g = altered_tornado_shifted(NUM_DATA_96, seed=10)
        assert g.num_nodes == 96


class TestCatalog:
    def test_three_graphs_numbered(self):
        assert set(TORNADO_SEEDS) == {1, 2, 3}

    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_adjusted_first_failure_is_five(self, number):
        g = tornado_catalog_graph(number)
        assert first_failure(g, limit=5) == 5

    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_unadjusted_first_failure_is_four(self, number):
        g = tornado_catalog_graph(number, adjusted=False)
        assert first_failure(g, limit=4) == 4

    def test_unknown_number_rejected(self):
        with pytest.raises(KeyError):
            tornado_catalog_graph(7)

    def test_catalog_caches(self):
        assert tornado_catalog_graph(1) is tornado_catalog_graph(1)

    def test_full_system_catalog(self):
        systems = catalog_96_node_systems()
        assert len(systems) == 12
        for name, g in systems.items():
            assert g.num_nodes == 96, name

    def test_catalog_first_failures_match_paper_shape(self):
        """Striped < mirrored < unadjusted families <= Tornado (5)."""
        systems = catalog_96_node_systems()
        ff = {
            name: first_failure(g, limit=5)
            for name, g in systems.items()
        }
        assert ff["Striped"] == 1
        assert ff["Mirrored"] == 2
        assert ff["Tornado Graph 1"] == 5
        assert ff["Tornado Graph 2"] == 5
        assert ff["Tornado Graph 3"] == 5
        assert ff["Cascaded - Degree 3"] == 4
        assert ff["Cascaded - Degree 4"] == 4
        assert ff["Cascaded - Degree 6"] == 5
        assert ff["Altered Tornado (dist. doubled)"] == 5
        assert ff["Altered Tornado (dist. shifted)"] == 5
        assert ff["Regular - Degree 4"] == 4
