"""Tests for the MAID power model and session metering."""

import pytest

from repro.storage import (
    DeviceArray,
    DeviceState,
    MAIDPowerModel,
    SessionMeter,
)


class TestPowerModel:
    def test_session_energy_formula(self):
        model = MAIDPowerModel(
            active_watts=10.0,
            standby_watts=1.0,
            spinup_joules=20.0,
        )
        e = model.session_energy(
            devices_touched=2,
            spin_ups=1,
            session_seconds=60.0,
            total_devices=10,
        )
        assert e == pytest.approx(2 * 10 * 60 + 8 * 1 * 60 + 20)

    def test_rejects_impossible_touch_count(self):
        model = MAIDPowerModel()
        with pytest.raises(ValueError):
            model.session_energy(11, 0, 1.0, 10)

    def test_fewer_devices_less_energy(self):
        model = MAIDPowerModel()
        few = model.session_energy(10, 10, 60.0, 96)
        many = model.session_energy(90, 90, 60.0, 96)
        assert few < many


class TestSessionMeter:
    def test_counts_each_device_once(self):
        arr = DeviceArray(4)
        meter = SessionMeter(arr, MAIDPowerModel())
        meter.touch(0)
        meter.touch(0)
        meter.touch(1)
        assert meter.touched == frozenset({0, 1})

    def test_spin_up_accounting(self):
        arr = DeviceArray(4)
        arr.spin_down_all()
        arr[0].state = DeviceState.ONLINE  # one already spinning
        meter = SessionMeter(arr, MAIDPowerModel())
        meter.touch_all([0, 1, 2])
        assert meter.spin_ups == 2

    def test_failed_device_raises(self):
        arr = DeviceArray(4)
        arr.fail([2])
        meter = SessionMeter(arr, MAIDPowerModel())
        with pytest.raises(IOError):
            meter.touch(2)

    def test_report(self):
        arr = DeviceArray(10)
        arr.spin_down_all()
        meter = SessionMeter(arr, MAIDPowerModel())
        meter.touch_all([0, 1, 2])
        report = meter.report("test-strategy", session_seconds=30.0)
        assert report.devices_touched == 3
        assert report.spin_ups == 3
        assert report.energy_joules > 0
        assert "test-strategy" in str(report)
