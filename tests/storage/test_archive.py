"""Tests for the transactional archive."""

import pytest

from repro.storage import DataLossError, DeviceArray, TornadoArchive


@pytest.fixture
def archive(small_tornado):
    return TornadoArchive(
        small_tornado, DeviceArray(40), block_size=64
    )


PAYLOAD = b"The quick brown fox jumps over the lazy dog. " * 30


class TestPutGet:
    def test_roundtrip(self, archive):
        archive.put("obj", PAYLOAD)
        assert archive.get("obj") == PAYLOAD

    def test_manifest_bookkeeping(self, archive):
        manifest = archive.put("obj", PAYLOAD)
        assert manifest.size == len(PAYLOAD)
        assert len(manifest.stripes) >= 1
        assert "obj" in archive.objects

    def test_multi_object_storage(self, archive):
        archive.put("a", b"first object")
        archive.put("b", b"second object")
        assert archive.get("a") == b"first object"
        assert archive.get("b") == b"second object"

    def test_unknown_object(self, archive):
        with pytest.raises(KeyError):
            archive.get("ghost")

    def test_overwrite_replaces(self, archive):
        archive.put("obj", b"v1")
        archive.put("obj", b"v2")
        assert archive.get("obj") == b"v2"

    def test_empty_object(self, archive):
        archive.put("empty", b"")
        assert archive.get("empty") == b""

    def test_pool_too_small_rejected(self, small_tornado):
        with pytest.raises(ValueError):
            TornadoArchive(small_tornado, DeviceArray(10))


class TestFailureTolerance:
    def test_survives_first_failure_minus_one(self, archive, rng):
        archive.put("obj", PAYLOAD)
        archive.devices.fail_random(2, rng)
        assert archive.get("obj") == PAYLOAD

    def test_data_loss_raises(self, archive):
        archive.put("obj", PAYLOAD)
        # kill every device: certainly unrecoverable
        archive.devices.fail(range(len(archive.devices)))
        with pytest.raises((DataLossError, IOError)):
            archive.get("obj")

    def test_data_loss_error_carries_context(self, small_tornado):
        archive = TornadoArchive(
            small_tornado, DeviceArray(32), block_size=32
        )
        archive.put("obj", b"x" * 100)
        record = archive.objects["obj"].stripes[0]
        # fail exactly the devices of the stripe's data nodes plus all
        # checks: guaranteed loss
        archive.devices.fail(record.placement.device_of)
        with pytest.raises(DataLossError) as exc:
            archive.get("obj")
        assert exc.value.object_name == "obj"


class TestDelete:
    def test_delete_removes_blocks(self, archive):
        archive.put("obj", PAYLOAD)
        archive.delete("obj")
        assert "obj" not in archive.objects
        total_blocks = sum(
            len(d.blocks) for d in archive.devices.devices
        )
        assert total_blocks == 0

    def test_delete_unknown(self, archive):
        with pytest.raises(KeyError):
            archive.delete("ghost")


class TestRepair:
    def test_missing_blocks_empty_when_healthy(self, archive):
        archive.put("obj", PAYLOAD)
        missing = archive.missing_blocks("obj")
        assert all(not v for v in missing.values())

    def test_repair_after_rebuild(self, archive, rng):
        archive.put("obj", PAYLOAD)
        archive.devices.fail_random(3, rng)
        archive.devices.rebuild_all()
        missing_before = archive.missing_blocks("obj")
        assert any(v for v in missing_before.values())
        repaired = archive.repair("obj")
        assert repaired > 0
        missing_after = archive.missing_blocks("obj")
        assert all(not v for v in missing_after.values())
        assert archive.get("obj") == PAYLOAD

    def test_repair_noop_when_healthy(self, archive):
        archive.put("obj", PAYLOAD)
        assert archive.repair("obj") == 0
