"""Tests for stripe placement."""

import numpy as np
import pytest

from repro.storage import StripeMap, rotated_placement


class TestStripeMap:
    def test_rejects_wrong_length(self, tiny_graph):
        with pytest.raises(ValueError):
            StripeMap(graph=tiny_graph, device_of=(0, 1, 2))

    def test_rejects_duplicate_devices(self, tiny_graph):
        with pytest.raises(ValueError, match="distinct"):
            StripeMap(graph=tiny_graph, device_of=(0, 1, 2, 3, 4, 4))

    def test_node_of(self, tiny_graph):
        sm = StripeMap(graph=tiny_graph, device_of=(5, 4, 3, 2, 1, 0))
        assert sm.node_of(5) == 0
        assert sm.node_of(0) == 5
        assert sm.node_of(77) is None

    def test_missing_nodes_from_availability(self, tiny_graph):
        sm = StripeMap(graph=tiny_graph, device_of=(0, 1, 2, 3, 4, 5))
        avail = np.array([True, False, True, True, False, True])
        assert sm.missing_nodes(avail) == [1, 4]

    def test_present_mask(self, tiny_graph):
        sm = StripeMap(graph=tiny_graph, device_of=(5, 4, 3, 2, 1, 0))
        avail = np.array([False, True, True, True, True, True])
        mask = sm.present_mask(avail)
        # node 5 lives on device 0 which is down
        np.testing.assert_array_equal(
            mask, [True, True, True, True, True, False]
        )


class TestRotatedPlacement:
    def test_distinct_devices(self, tiny_graph):
        sm = rotated_placement(tiny_graph, pool_size=10, stripe_index=3)
        assert len(set(sm.device_of)) == 6

    def test_rotation_moves_across_stripes(self, tiny_graph):
        a = rotated_placement(tiny_graph, pool_size=10, stripe_index=0)
        b = rotated_placement(tiny_graph, pool_size=10, stripe_index=1)
        assert a.device_of != b.device_of

    def test_pool_too_small_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            rotated_placement(tiny_graph, pool_size=5, stripe_index=0)

    def test_exact_fit_pool(self, tiny_graph):
        sm = rotated_placement(tiny_graph, pool_size=6, stripe_index=7)
        assert sorted(sm.device_of) == list(range(6))
