"""Tests for retrieval planning strategies."""

import numpy as np
import pytest

from repro.core import PeelingDecoder
from repro.storage import (
    plan_all,
    plan_data_first,
    plan_guided,
    rotated_placement,
)

STRATEGIES = [plan_all, plan_data_first, plan_guided]


@pytest.fixture
def placement(small_tornado):
    return rotated_placement(small_tornado, 40, 0)


def full_availability(n=40):
    return np.ones(n, dtype=bool)


class TestPlansDecodability:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_healthy_system_plans_decode(
        self, small_tornado, placement, strategy
    ):
        plan = strategy(small_tornado, placement, full_availability())
        assert plan.decodable
        dec = PeelingDecoder(small_tornado)
        missing = [
            n for n in range(small_tornado.num_nodes) if n not in plan.nodes
        ]
        assert dec.is_recoverable(missing)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_damaged_system_plans_decode(
        self, small_tornado, placement, strategy, rng
    ):
        for _ in range(10):
            avail = full_availability()
            lost_devices = rng.choice(40, size=3, replace=False)
            avail[lost_devices] = False
            plan = strategy(small_tornado, placement, avail)
            assert plan.decodable
            # plan must not use unavailable devices
            assert all(avail[d] for d in plan.devices)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_unrecoverable_reports_not_decodable(
        self, small_tornado, placement, strategy
    ):
        avail = np.zeros(40, dtype=bool)  # everything down
        plan = strategy(small_tornado, placement, avail)
        assert not plan.decodable


class TestEfficiency:
    def test_data_first_touches_only_data_when_healthy(
        self, small_tornado, placement
    ):
        plan = plan_data_first(
            small_tornado, placement, full_availability()
        )
        assert plan.device_count == small_tornado.num_data

    def test_guided_touches_only_data_when_healthy(
        self, small_tornado, placement
    ):
        plan = plan_guided(small_tornado, placement, full_availability())
        assert plan.device_count == small_tornado.num_data

    def test_all_available_touches_everything(
        self, small_tornado, placement
    ):
        plan = plan_all(small_tornado, placement, full_availability())
        assert plan.device_count == small_tornado.num_nodes

    def test_guided_never_worse_than_all(
        self, small_tornado, placement, rng
    ):
        for _ in range(10):
            avail = full_availability()
            avail[rng.choice(40, size=5, replace=False)] = False
            guided = plan_guided(small_tornado, placement, avail)
            naive = plan_all(small_tornado, placement, avail)
            assert guided.device_count <= naive.device_count

    def test_guided_beats_data_first_on_average(
        self, small_tornado, placement, rng
    ):
        wins = ties = losses = 0
        for _ in range(20):
            avail = full_availability()
            avail[rng.choice(40, size=6, replace=False)] = False
            g = plan_guided(small_tornado, placement, avail)
            d = plan_data_first(small_tornado, placement, avail)
            if not (g.decodable and d.decodable):
                continue
            if g.device_count < d.device_count:
                wins += 1
            elif g.device_count == d.device_count:
                ties += 1
            else:
                losses += 1
        assert wins + ties >= losses
