"""Tests for the archival mission simulator."""

import numpy as np
import pytest

from repro.storage import (
    DeviceArray,
    MissionConfig,
    TornadoArchive,
    run_mission,
)


@pytest.fixture
def loaded_archive(graph3):
    archive = TornadoArchive(graph3, DeviceArray(96), block_size=64)
    archive.put("alpha", bytes(range(256)) * 20)
    archive.put("beta", b"payload" * 500)
    return archive


class TestMissionConfig:
    def test_step_probability_compounds_to_afr(self):
        cfg = MissionConfig(afr=0.04, steps_per_year=52)
        yearly = 1 - (1 - cfg.step_failure_probability) ** 52
        assert yearly == pytest.approx(0.04)

    def test_num_steps(self):
        assert MissionConfig(years=2, steps_per_year=10).num_steps == 20


class TestRunMission:
    def test_calm_mission_survives(self, loaded_archive):
        cfg = MissionConfig(years=1, afr=0.01)
        report = run_mission(
            loaded_archive, cfg, np.random.default_rng(0)
        )
        assert report.survived
        assert report.min_margin >= 0
        assert loaded_archive.get("alpha")  # archive still intact

    def test_stormy_mission_logs_events(self, loaded_archive):
        cfg = MissionConfig(years=3, afr=0.15, replacement_lag_steps=1)
        report = run_mission(
            loaded_archive, cfg, np.random.default_rng(1)
        )
        kinds = {e.kind for e in report.events}
        assert "failure" in kinds
        assert report.device_failures > 0
        if report.survived:
            assert "repair" in kinds or report.blocks_repaired == 0

    def test_catastrophic_rates_eventually_lose(self, loaded_archive):
        """With near-certain weekly failures and slow replacement the
        mission must record a loss (and stop at it)."""
        cfg = MissionConfig(
            years=2,
            steps_per_year=12,
            afr=0.9999,
            replacement_lag_steps=50,
        )
        report = run_mission(
            loaded_archive, cfg, np.random.default_rng(2)
        )
        assert not report.survived
        assert report.events[-1].kind == "loss"

    def test_repairs_accumulate(self, loaded_archive):
        cfg = MissionConfig(
            years=4, afr=0.2, replacement_lag_steps=1, repair_margin=3
        )
        report = run_mission(
            loaded_archive, cfg, np.random.default_rng(3)
        )
        if report.survived:
            assert report.blocks_repaired > 0

    def test_describe_mentions_outcome(self, loaded_archive):
        cfg = MissionConfig(years=0.5, afr=0.01)
        report = run_mission(
            loaded_archive, cfg, np.random.default_rng(0)
        )
        text = report.describe()
        assert "outcome:" in text
        assert "device failures" in text

    def test_deterministic(self, graph3):
        def fresh():
            archive = TornadoArchive(
                graph3, DeviceArray(96), block_size=32
            )
            archive.put("x", bytes(2000))
            return archive

        cfg = MissionConfig(years=2, afr=0.1)
        r1 = run_mission(fresh(), cfg, np.random.default_rng(5))
        r2 = run_mission(fresh(), cfg, np.random.default_rng(5))
        assert [
            (e.step, e.kind, e.detail) for e in r1.events
        ] == [(e.step, e.kind, e.detail) for e in r2.events]
