"""Tests for silent-corruption detection and scrubbing."""

import pytest

from repro.storage import DataLossError, DeviceArray, TornadoArchive
from repro.storage.integrity import (
    IntegrityScanner,
    corrupt_block,
)

PAYLOAD = bytes(range(256)) * 30


@pytest.fixture
def setup(small_tornado):
    archive = TornadoArchive(
        small_tornado, DeviceArray(40), block_size=64
    )
    archive.put("obj", PAYLOAD)
    scanner = IntegrityScanner(archive)
    scanner.register("obj")
    return archive, scanner


class TestVerify:
    def test_clean_after_put(self, setup):
        archive, scanner = setup
        report = scanner.verify("obj")
        assert report.clean
        assert report.blocks_checked > 0

    def test_detects_single_flip(self, setup):
        archive, scanner = setup
        corrupt_block(archive, "obj", stripe_index=0, node=5)
        report = scanner.verify("obj")
        assert not report.clean
        assert len(report.corrupt) == 1
        bad = report.corrupt[0]
        assert (bad.stripe_index, bad.node) == (0, 5)

    def test_failed_devices_are_not_corruption(self, setup, rng):
        archive, scanner = setup
        archive.devices.fail_random(3, rng)
        report = scanner.verify("obj")
        assert report.clean  # erasures are a different failure mode

    def test_undetectable_without_registration(self, small_tornado):
        archive = TornadoArchive(
            small_tornado, DeviceArray(40), block_size=64
        )
        archive.put("obj", PAYLOAD)
        scanner = IntegrityScanner(archive)  # no register()
        corrupt_block(archive, "obj", 0, 3)
        assert scanner.verify("obj").blocks_checked == 0


class TestScrub:
    def test_scrub_noop_when_clean(self, setup):
        _, scanner = setup
        assert scanner.scrub("obj") == 0

    def test_scrub_repairs_corruption(self, setup):
        archive, scanner = setup
        corrupt_block(archive, "obj", 0, 2)
        corrupt_block(archive, "obj", 0, 17)
        assert scanner.scrub("obj") == 2
        assert scanner.verify("obj").clean
        assert archive.get("obj") == PAYLOAD

    def test_scrubbed_data_matches_original_not_corruption(self, setup):
        """The rewritten block must carry the original content."""
        archive, scanner = setup
        record = archive.objects["obj"].stripes[0]
        from repro.storage.archive import _block_key

        key = _block_key("obj", 0, 2)
        dev = archive.devices[record.placement.device_of[2]]
        original = dev.blocks[key]
        corrupt_block(archive, "obj", 0, 2)
        assert dev.blocks[key] != original
        scanner.scrub("obj")
        assert dev.blocks[key] == original

    def test_scrub_with_concurrent_failures(self, setup, rng):
        archive, scanner = setup
        archive.devices.fail_random(2, rng)
        healthy_nodes = [
            n
            for n, d in enumerate(
                archive.objects["obj"].stripes[0].placement.device_of
            )
            if archive.devices.available_mask[d]
        ]
        corrupt_block(archive, "obj", 0, healthy_nodes[0])
        assert scanner.scrub("obj") == 1
        assert archive.get("obj") == PAYLOAD

    def test_scrub_beyond_tolerance_raises(self, setup):
        """Mass corruption exceeding the code's tolerance surfaces as
        data loss, not silent acceptance."""
        archive, scanner = setup
        record = archive.objects["obj"].stripes[0]
        for node in range(archive.graph.num_nodes):
            corrupt_block(archive, "obj", 0, node)
        with pytest.raises(DataLossError):
            scanner.scrub("obj")
