"""Data-loss and degraded-read paths through the storage stack.

Exercises the unhappy paths end-to-end: missions that genuinely lose
data, repair cycles facing more failures than the code can absorb, and
``archive.get`` against needed devices in each bad state (STANDBY spins
up, UNAVAILABLE retries, FAILED falls through to loss).
"""

import numpy as np
import pytest

from repro.resilience import (
    DrawerOutages,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.storage import (
    DataLossError,
    DeviceArray,
    DeviceState,
    MissionConfig,
    StripeMonitor,
    TornadoArchive,
    TransientUnavailableError,
    plan_with_fallback,
    run_mission,
)

PAYLOAD = bytes(range(256)) * 8


@pytest.fixture
def archive(small_tornado):
    archive = TornadoArchive(small_tornado, DeviceArray(32), block_size=64)
    archive.put("doc", PAYLOAD)
    return archive


class TestMissionLoss:
    def test_destructive_injector_forces_data_loss(self, archive):
        """A drawer-destroying storm the monitor cannot outrun must end
        the mission in a recorded loss, not an exception."""
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DrawerOutages(rate=1.0, drawer_size=12, mode="fail"),
                )
            )
        )
        config = MissionConfig(
            years=1.0,
            steps_per_year=12,
            afr=0.0,
            replacement_lag_steps=50,
        )
        report = run_mission(
            archive,
            config,
            np.random.default_rng(0),
            injector=injector,
        )
        assert not report.survived
        assert "doc" in report.lost_objects
        assert report.events[-1].kind == "loss"

    def test_loss_stops_the_mission_early(self, archive):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    DrawerOutages(rate=1.0, drawer_size=12, mode="fail"),
                )
            )
        )
        config = MissionConfig(
            years=10.0, afr=0.0, replacement_lag_steps=50
        )
        report = run_mission(
            archive,
            config,
            np.random.default_rng(0),
            injector=injector,
        )
        loss_steps = [e.step for e in report.events if e.kind == "loss"]
        assert loss_steps and loss_steps[0] < config.num_steps - 1


class TestOverwhelmedRepair:
    def test_repair_cycle_raises_when_margin_exceeded(self, archive):
        """More simultaneous failures than the stripe can absorb must
        surface as DataLossError from the repair cycle."""
        archive.devices.fail(range(20))  # 12 survivors < 16 data blocks
        monitor = StripeMonitor(archive, repair_margin=2)
        with pytest.raises(DataLossError):
            monitor.repair_cycle()

    def test_repair_cycle_skips_transient_unavailability(self, archive):
        """The same outage pattern, but transient: the cycle defers the
        object instead of declaring loss."""
        archive.devices.interrupt(range(20))
        monitor = StripeMonitor(archive, repair_margin=2)
        repaired = monitor.repair_cycle()  # must not raise
        assert "doc" not in repaired
        archive.devices.restore(range(20))
        assert archive.get("doc") == PAYLOAD

    def test_repair_cycle_recovers_within_margin(self, archive):
        archive.devices.fail([0, 1])
        monitor = StripeMonitor(archive, repair_margin=3)
        for d in (0, 1):
            archive.devices[d].rebuild()
        repaired = monitor.repair_cycle()
        assert repaired.get("doc", 0) > 0
        assert archive.get("doc") == PAYLOAD


class TestGetDeviceStates:
    def test_standby_devices_serve_after_spin_up(self, archive):
        for d in archive.devices.devices:
            d.spin_down()
        assert all(
            d.state is DeviceState.STANDBY
            for d in archive.devices.devices
        )
        assert archive.get("doc") == PAYLOAD
        assert any(d.spin_ups > 0 for d in archive.devices.devices)

    def test_failed_devices_raise_data_loss(self, archive):
        archive.devices.fail(range(20))
        with pytest.raises(DataLossError):
            archive.get("doc")

    def test_unavailable_devices_raise_transient(self, archive):
        archive.devices.interrupt(range(20))
        with pytest.raises(TransientUnavailableError) as excinfo:
            archive.get("doc")
        assert excinfo.value.device_ids  # names the culprits

    def test_retry_rides_out_the_outage(self, archive):
        archive.devices.interrupt(range(20))

        def recover(_delay):
            archive.devices.restore(range(20))

        retry = RetryPolicy(
            max_attempts=2, jitter=0.0, seed=0, sleep=recover
        )
        assert archive.get("doc", retry=retry) == PAYLOAD

    def test_retry_exhaustion_still_transient(self, archive):
        archive.devices.interrupt(range(20))
        retry = RetryPolicy(
            max_attempts=1, jitter=0.0, seed=0, sleep=lambda _d: None
        )
        with pytest.raises(TransientUnavailableError):
            archive.get("doc", retry=retry)
        # the data is intact once the devices return
        archive.devices.restore(range(20))
        assert archive.get("doc") == PAYLOAD

    def test_mixed_failed_and_unavailable_prefers_transient(self, archive):
        """While any needed device may still come back, the archive
        must not declare permanent loss."""
        archive.devices.fail(range(10))
        archive.devices.interrupt(range(10, 20))
        with pytest.raises(TransientUnavailableError):
            archive.get("doc")


class TestPlanFallback:
    def test_fallback_with_recovering_availability(self, small_tornado):
        archive = TornadoArchive(
            small_tornado, DeviceArray(32), block_size=64
        )
        archive.put("doc", PAYLOAD)
        record = archive.objects["doc"].stripes[0]
        archive.devices.interrupt(range(20))

        # without retry: every strategy fails, the plan comes back
        # undecodable instead of raising
        stuck = plan_with_fallback(
            small_tornado,
            record.placement,
            archive.devices.available_mask,
        )
        assert not stuck.decodable

        def recover(_delay):
            archive.devices.restore(range(20))

        retry = RetryPolicy(
            max_attempts=2, jitter=0.0, seed=0, sleep=recover
        )
        plan = plan_with_fallback(
            small_tornado,
            record.placement,
            lambda: archive.devices.available_mask,
            retry=retry,
        )
        assert plan.decodable
