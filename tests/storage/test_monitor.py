"""Tests for proactive stripe monitoring."""

import pytest

from repro.storage import DeviceArray, StripeMonitor, TornadoArchive


@pytest.fixture
def archive(graph3):
    return TornadoArchive(graph3, DeviceArray(96), block_size=64)


PAYLOAD = bytes(range(256)) * 40


class TestScan:
    def test_healthy_archive_full_margin(self, archive):
        archive.put("obj", PAYLOAD)
        monitor = StripeMonitor(archive)
        report = monitor.scan()
        assert report.stripes
        # Graph 3's first failure is 5: margin 4 with nothing missing.
        assert all(s.margin == 4 for s in report.stripes)
        assert report.at_risk == ()

    def test_margin_decreases_with_failures(self, archive, rng):
        archive.put("obj", PAYLOAD)
        archive.devices.fail_random(3, rng)
        monitor = StripeMonitor(archive)
        report = monitor.scan()
        assert all(s.margin == 1 for s in report.stripes)
        assert all(s.at_risk for s in report.stripes)

    def test_lost_flag_beyond_first_failure(self, archive, rng):
        archive.put("obj", PAYLOAD)
        archive.devices.fail_random(5, rng)
        monitor = StripeMonitor(archive)
        worst = monitor.scan().worst()
        assert worst is not None
        assert worst.margin == -1
        assert worst.lost

    def test_describe(self, archive):
        archive.put("obj", PAYLOAD)
        text = StripeMonitor(archive).scan().describe()
        assert "stripes monitored" in text

    def test_empty_archive(self, archive):
        report = StripeMonitor(archive).scan()
        assert report.stripes == ()
        assert report.worst() is None


class TestRepairCycle:
    def test_repairs_only_endangered(self, archive, rng):
        archive.put("obj", PAYLOAD)
        monitor = StripeMonitor(archive, repair_margin=1)
        # Healthy: nothing to do.
        assert monitor.repair_cycle() == {}
        # Damage to the threshold, rebuild devices, expect repair.
        archive.devices.fail_random(3, rng)
        archive.devices.rebuild_all()
        repaired = monitor.repair_cycle()
        assert repaired.get("obj", 0) > 0
        assert all(s.margin == 4 for s in monitor.scan().stripes)

    def test_threshold_respected(self, archive, rng):
        archive.put("obj", PAYLOAD)
        monitor = StripeMonitor(archive, repair_margin=0)
        archive.devices.fail_random(2, rng)  # margin 2: above threshold 0
        archive.devices.rebuild_all()
        assert monitor.repair_cycle() == {}

    def test_rejects_negative_margin(self, archive):
        with pytest.raises(ValueError):
            StripeMonitor(archive, repair_margin=-1)
