"""Tests for simulated devices and failure injection."""

import numpy as np
import pytest

from repro.storage import Device, DeviceArray, DeviceState


class TestDevice:
    def test_write_read_roundtrip(self):
        d = Device(device_id=0)
        d.write_block("a", b"hello")
        assert d.read_block("a") == b"hello"
        assert d.reads == 1
        assert d.writes == 1

    def test_missing_block_keyerror(self):
        d = Device(device_id=0)
        with pytest.raises(KeyError):
            d.read_block("missing")

    def test_failed_device_raises_io(self):
        d = Device(device_id=0)
        d.write_block("a", b"x")
        d.fail()
        with pytest.raises(IOError):
            d.read_block("a")
        with pytest.raises(IOError):
            d.write_block("b", b"y")

    def test_failure_destroys_contents(self):
        d = Device(device_id=0)
        d.write_block("a", b"x")
        d.fail()
        d.rebuild()
        with pytest.raises(KeyError):
            d.read_block("a")

    def test_spin_up_counter(self):
        d = Device(device_id=0)
        d.write_block("a", b"x")
        d.spin_down()
        assert d.state is DeviceState.STANDBY
        d.read_block("a")
        assert d.state is DeviceState.ONLINE
        assert d.spin_ups == 1

    def test_spin_down_is_idempotent_for_failed(self):
        d = Device(device_id=0)
        d.fail()
        d.spin_down()  # no state change
        assert d.state is DeviceState.FAILED

    def test_available_property(self):
        d = Device(device_id=0)
        assert d.available
        d.spin_down()
        assert d.available
        d.fail()
        assert not d.available


class TestDeviceArray:
    def test_length_and_indexing(self):
        arr = DeviceArray(8)
        assert len(arr) == 8
        assert arr[3].device_id == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DeviceArray(0)

    def test_available_mask(self):
        arr = DeviceArray(4)
        arr.fail([1, 3])
        np.testing.assert_array_equal(
            arr.available_mask, [True, False, True, False]
        )
        assert arr.failed_ids == [1, 3]

    def test_fail_random_exact_count(self, rng):
        arr = DeviceArray(20)
        failed = arr.fail_random(5, rng)
        assert len(failed) == 5
        assert len(arr.failed_ids) == 5

    def test_fail_random_only_alive(self, rng):
        arr = DeviceArray(5)
        arr.fail([0, 1, 2])
        failed = arr.fail_random(2, rng)
        assert set(failed) == {3, 4}
        with pytest.raises(ValueError):
            arr.fail_random(1, rng)

    def test_fail_bernoulli_statistics(self):
        rng = np.random.default_rng(0)
        arr = DeviceArray(2000)
        failed = arr.fail_bernoulli(0.1, rng)
        assert 130 < len(failed) < 270  # ~200 expected

    def test_rebuild_all(self):
        arr = DeviceArray(4)
        arr.fail([0, 2])
        arr.rebuild_all()
        assert arr.failed_ids == []

    def test_spin_down_all_and_counters(self):
        arr = DeviceArray(3)
        arr[0].write_block("k", b"v")
        arr.spin_down_all()
        arr[0].read_block("k")
        assert arr.total_spin_ups() == 1
        assert arr.total_reads() == 1
