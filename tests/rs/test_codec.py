"""Tests for the Reed-Solomon baseline codec (MDS property)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import ReedSolomonCodec, RSDecodeError, cauchy_matrix


class TestCauchyMatrix:
    def test_shape(self):
        assert cauchy_matrix(4, 3).shape == (3, 4)

    def test_no_zero_entries(self):
        m = cauchy_matrix(8, 8)
        assert (m != 0).all()

    def test_square_submatrices_invertible(self):
        """The MDS property: every square submatrix is nonsingular."""
        import itertools

        from repro.rs import invert_matrix

        m = cauchy_matrix(4, 4)
        for rows in itertools.combinations(range(4), 2):
            for cols in itertools.combinations(range(4), 2):
                sub = m[np.ix_(rows, cols)]
                invert_matrix(sub)  # must not raise

    def test_field_size_limit(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)
        with pytest.raises(ValueError):
            cauchy_matrix(0, 4)


class TestCodec:
    @pytest.fixture
    def codec(self):
        return ReedSolomonCodec(k=6, m=4)

    def data(self, codec, rng, length=128):
        return rng.integers(0, 256, (codec.k, length), dtype=np.uint8)

    def test_systematic_encoding(self, codec, rng):
        d = self.data(codec, rng)
        enc = codec.encode_blocks(d)
        np.testing.assert_array_equal(enc[: codec.k], d)
        assert enc.shape == (10, 128)

    def test_roundtrip_no_loss(self, codec, rng):
        d = self.data(codec, rng)
        enc = codec.encode_blocks(d)
        out = codec.decode_blocks(enc, np.ones(10, dtype=bool))
        np.testing.assert_array_equal(out, d)

    def test_tolerates_any_m_erasures(self, codec, rng):
        """MDS: every pattern of exactly m losses is recoverable."""
        import itertools

        d = self.data(codec, rng, length=16)
        enc = codec.encode_blocks(d)
        for lost in itertools.combinations(range(10), codec.m):
            present = np.ones(10, dtype=bool)
            present[list(lost)] = False
            out = codec.decode_blocks(enc, present)
            np.testing.assert_array_equal(out, d)

    def test_m_plus_one_erasures_rejected(self, codec, rng):
        d = self.data(codec, rng)
        enc = codec.encode_blocks(d)
        present = np.ones(10, dtype=bool)
        present[:5] = False
        with pytest.raises(RSDecodeError):
            codec.decode_blocks(enc, present)

    def test_shape_validation(self, codec, rng):
        with pytest.raises(ValueError):
            codec.encode_blocks(np.zeros((3, 8), dtype=np.uint8))
        d = self.data(codec, rng)
        enc = codec.encode_blocks(d)
        with pytest.raises(ValueError):
            codec.decode_blocks(enc, np.ones(7, dtype=bool))

    def test_paper_scale_configuration(self, rng):
        """48+48 matches the Tornado comparison configuration."""
        codec = ReedSolomonCodec(k=48, m=48)
        d = rng.integers(0, 256, (48, 64), dtype=np.uint8)
        enc = codec.encode_blocks(d)
        present = np.zeros(96, dtype=bool)
        survivors = rng.choice(96, size=48, replace=False)
        present[survivors] = True
        out = codec.decode_blocks(enc, present)
        np.testing.assert_array_equal(out, d)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 8),
        m=st.integers(1, 6),
    )
    def test_mds_roundtrip_property(self, seed, k, m):
        rng = np.random.default_rng(seed)
        codec = ReedSolomonCodec(k=k, m=m)
        d = rng.integers(0, 256, (k, 8), dtype=np.uint8)
        enc = codec.encode_blocks(d)
        lost = rng.choice(k + m, size=m, replace=False)
        present = np.ones(k + m, dtype=bool)
        present[lost] = False
        out = codec.decode_blocks(enc, present)
        np.testing.assert_array_equal(out, d)
