"""Field-axiom and kernel tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import gf_div, gf_inv, gf_mul, gf_pow, invert_matrix, matmul
from repro.rs.gf256 import addmul_vec, mul_vec

elem = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestScalarOps:
    def test_multiplicative_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0

    def test_known_product(self):
        # 2 * 128 = 0x11d reduced: 0x11d ^ 0x100 = 0x1d
        assert gf_mul(2, 128) == 0x1D

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_division(self):
        assert gf_div(gf_mul(7, 9), 9) == 7
        with pytest.raises(ZeroDivisionError):
            gf_div(3, 0)
        assert gf_div(0, 5) == 0

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 255) == 1  # group order
        assert gf_pow(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, 0)

    @settings(max_examples=200, deadline=None)
    @given(a=elem, b=elem)
    def test_commutativity(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @settings(max_examples=200, deadline=None)
    @given(a=elem, b=elem, c=elem)
    def test_associativity(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @settings(max_examples=200, deadline=None)
    @given(a=elem, b=elem, c=elem)
    def test_distributivity_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestVectorKernels:
    def test_mul_vec_matches_scalar(self, rng):
        v = rng.integers(0, 256, 64, dtype=np.uint8)
        for c in (0, 1, 2, 37, 255):
            out = mul_vec(c, v)
            expect = np.array(
                [gf_mul(c, int(x)) for x in v], dtype=np.uint8
            )
            np.testing.assert_array_equal(out, expect)

    def test_addmul_vec_in_place(self, rng):
        v = rng.integers(0, 256, 16, dtype=np.uint8)
        acc = rng.integers(0, 256, 16, dtype=np.uint8)
        snapshot = acc.copy()
        addmul_vec(acc, 5, v)
        expect = snapshot ^ mul_vec(5, v)
        np.testing.assert_array_equal(acc, expect)

    def test_addmul_zero_coefficient_noop(self, rng):
        acc = rng.integers(0, 256, 8, dtype=np.uint8)
        snapshot = acc.copy()
        addmul_vec(acc, 0, acc.copy())
        np.testing.assert_array_equal(acc, snapshot)


class TestMatrixOps:
    def test_identity_inverse(self):
        eye = np.eye(5, dtype=np.uint8)
        np.testing.assert_array_equal(invert_matrix(eye), eye)

    def test_inverse_roundtrip(self, rng):
        for _ in range(10):
            m = rng.integers(0, 256, (6, 6), dtype=np.uint8)
            try:
                inv = invert_matrix(m)
            except np.linalg.LinAlgError:
                continue
            np.testing.assert_array_equal(
                matmul(m, inv), np.eye(6, dtype=np.uint8)
            )

    def test_singular_detected(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            invert_matrix(m)

    def test_matmul_shapes(self):
        with pytest.raises(ValueError):
            matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_non_square_invert_rejected(self):
        with pytest.raises(ValueError):
            invert_matrix(np.zeros((2, 3), dtype=np.uint8))
