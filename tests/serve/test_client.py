"""Blocking-client tests against in-process servers on a loop thread."""

import asyncio
import hashlib
import threading

import pytest

from repro.serve import (
    ClusterClient,
    ReconstructClient,
    ReconstructionService,
    ServeConfig,
    seeded_archive,
    start_frontend,
)
from repro.cluster import StorageNode, start_storage_node
from repro.core import tornado_graph
from repro.serve.protocol import RemoteError
from repro.storage.device import TransientUnavailableError


class LoopThread:
    """An asyncio loop on a daemon thread; sync tests drive coroutines."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()

    def run(self, coro, timeout=30.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop
        ).result(timeout)

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5)


@pytest.fixture
def loop_thread():
    lt = LoopThread()
    yield lt
    lt.stop()


@pytest.fixture
def frontend(loop_thread):
    """A live frontend over a seeded archive; yields (client, expected)."""
    graph = tornado_graph(16, seed=3, min_final_lefts=6)
    archive, names = seeded_archive(
        graph, objects=2, object_size=1024, block_size=64, seed=0
    )
    expected = {name: archive.get(name) for name in names}

    async def setup():
        service = ReconstructionService(
            archive, ServeConfig(batch_window=0.0)
        )
        await service.start()
        server = await start_frontend(service, port=0)
        return service, server

    service, server = loop_thread.run(setup())
    host, port = server.sockets[0].getsockname()[:2]
    client = ReconstructClient(host, port)
    yield client, expected

    async def teardown():
        server.close()
        await server.wait_closed()
        await service.close()

    client.close()
    loop_thread.run(teardown())


@pytest.fixture
def node_endpoint(loop_thread):
    """A live storage node; yields (client, node)."""
    node = StorageNode("node-t", seed=1)

    async def setup():
        return await start_storage_node(node, port=0)

    server = loop_thread.run(setup())
    host, port = server.sockets[0].getsockname()[:2]
    client = ClusterClient(host, port)
    yield client, node
    client.close()
    server.close()


class TestReconstructClient:
    def test_get_matches_archive_content(self, frontend):
        client, expected = frontend
        for name, payload in expected.items():
            info = client.get(name)
            assert info.size == len(payload)
            assert info.sha256 == hashlib.sha256(payload).hexdigest()

    def test_ping_and_stats(self, frontend):
        client, _ = frontend
        assert client.ping() is True
        stats = client.stats()
        assert stats["state"] == "running"
        assert "plan_cache" in stats

    def test_unknown_object_raises_key_error(self, frontend):
        client, _ = frontend
        with pytest.raises(KeyError):
            client.get("no-such-object")

    def test_context_manager_reconnects_per_instance(self, frontend):
        client, expected = frontend
        name = sorted(expected)[0]
        with ReconstructClient(client.host, client.port) as fresh:
            assert fresh.get(name).size == len(expected[name])


class TestClusterClientBlockPlane:
    def test_block_round_trip(self, node_endpoint):
        client, _ = node_endpoint
        client.block_put("a/0/0", b"\x01\x02")
        assert client.block_get("a/0/0") == b"\x01\x02"
        held, missing = client.block_fetch(("a/0/0", "a/0/1"))
        assert held == {"a/0/0": b"\x01\x02"}
        assert missing == ("a/0/1",)
        assert client.block_list() == ("a/0/0",)
        assert client.block_delete("a/0/0") is True
        assert client.block_delete("a/0/0") is False

    def test_missing_block_raises_key_error(self, node_endpoint):
        client, _ = node_endpoint
        with pytest.raises(KeyError):
            client.block_get("nope")

    def test_node_admin_interrupt_darkens_data_plane_only(
        self, node_endpoint
    ):
        client, node = node_endpoint
        client.block_put("k", b"x")
        client.node_admin("interrupt")
        # Control plane still answers; data plane reports unavailable.
        assert client.ping() is True
        assert client.node_stats()["available"] is False
        with pytest.raises(TransientUnavailableError):
            client.block_get("k")
        client.node_admin("restore")
        assert client.block_get("k") == b"x"
        # Blocks survived the outage — unavailability is not loss.
        assert node.store.bytes_stored == 1

    def test_cluster_op_on_node_is_structured_unknown_op(
        self, node_endpoint
    ):
        client, _ = node_endpoint
        with pytest.raises(RemoteError) as excinfo:
            client.status()
        assert excinfo.value.code == "unknown_op"
        # The connection survived the rejection.
        assert client.ping() is True
