"""Unit tests for the peeling-plan LRU cache."""

import pytest

from repro.core import tornado_graph
from repro.core.decoder import PeelingDecoder
from repro.graphs import tornado_catalog_graph
from repro.serve import PlanCache, graph_key


@pytest.fixture(scope="module")
def graph():
    return tornado_graph(16, seed=3, min_final_lefts=6)


class TestGraphKey:
    def test_stable_for_same_structure(self, graph):
        assert graph_key(graph) == graph_key(graph)

    def test_differs_between_graphs(self, graph):
        other = tornado_catalog_graph(3)
        assert graph_key(graph) != graph_key(other)

    def test_renaming_does_not_change_key(self, graph):
        assert graph_key(graph) == graph_key(graph.renamed("other-name"))


class TestPlanCache:
    def test_schedule_matches_direct_decode(self, graph):
        cache = PlanCache(capacity=8)
        missing = [0, 1, 2]
        direct = PeelingDecoder(graph).decode(missing)
        cached = cache.schedule(graph, missing)
        assert cached.success == direct.success
        assert cached.steps == direct.steps

    def test_hit_on_repeat_mask(self, graph):
        cache = PlanCache(capacity=8)
        first = cache.schedule(graph, [3, 1])
        second = cache.schedule(graph, (1, 3))  # order-insensitive key
        assert second is first
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_masks_are_distinct_entries(self, graph):
        cache = PlanCache(capacity=8)
        cache.schedule(graph, [0])
        cache.schedule(graph, [1])
        assert len(cache) == 2
        assert cache.misses == 2

    def test_lru_eviction(self, graph):
        cache = PlanCache(capacity=2)
        cache.schedule(graph, [0])
        cache.schedule(graph, [1])
        cache.schedule(graph, [0])  # refresh [0]
        cache.schedule(graph, [2])  # evicts [1]
        assert cache.evictions == 1
        cache.schedule(graph, [0])
        assert cache.hits == 2  # [0] survived both rounds
        cache.schedule(graph, [1])  # gone: recomputed
        assert cache.misses == 4

    def test_capacity_zero_disables_caching(self, graph):
        cache = PlanCache(capacity=0)
        a = cache.schedule(graph, [0])
        b = cache.schedule(graph, [0])
        assert a is not b
        assert cache.hits == 0
        assert cache.misses == 2
        assert len(cache) == 0

    def test_failed_plans_are_cached_too(self, graph):
        cache = PlanCache(capacity=8)
        everything = list(range(graph.num_nodes))
        plan = cache.schedule(graph, everything)
        assert not plan.success
        again = cache.schedule(graph, everything)
        assert again is plan
        assert cache.hits == 1

    def test_clear(self, graph):
        cache = PlanCache(capacity=8)
        cache.schedule(graph, [0])
        cache.clear()
        assert len(cache) == 0
        cache.schedule(graph, [0])
        assert cache.misses == 2

    def test_stats_shape(self, graph):
        cache = PlanCache(capacity=4)
        cache.schedule(graph, [0])
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "capacity": 4,
            "hits": 0,
            "misses": 1,
            "evictions": 0,
        }

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_two_graphs_share_one_cache(self, graph):
        other = tornado_catalog_graph(3)
        cache = PlanCache(capacity=8)
        cache.schedule(graph, [0])
        cache.schedule(other, [0])
        assert len(cache) == 2
        assert cache.misses == 2
