"""Degraded-headroom probe: the serve layer's bulk batch-decode consumer."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import tornado_graph
from repro.serve import ReconstructionService, ServeConfig, seeded_archive
from repro.storage import DeviceState


def small_archive(severity: int = 0, objects: int = 2):
    graph = tornado_graph(16, seed=3, min_final_lefts=6)
    return seeded_archive(
        graph,
        objects=objects,
        object_size=1024,
        block_size=64,
        severity=severity,
        seed=0,
    )


def probe(archive, config=None):
    service = ReconstructionService(archive, config)
    return service, service.degraded_headroom()


class TestDegradedHeadroom:
    def test_healthy_archive_structure(self):
        archive, _names = small_archive(severity=0)
        service, report = probe(archive)
        assert report["engine"] == service.decode_engine
        assert report["devices"] == len(archive.devices)
        assert report["stripes"] > 0
        # One base case plus one per (stripe, device-hosting-a-node).
        assert report["cases"] == report["stripes"] * (
            archive.graph.num_nodes + 1
        )
        assert report["stripes_failing_now"] == []
        # A healthy single-site tornado archive survives any one loss.
        assert report["at_risk_devices"] == []
        assert report["tolerates_any_single_failure"]

    def test_engines_agree(self):
        archive, _names = small_archive(severity=4)
        _, bit = probe(archive, ServeConfig(decode_engine="bitset"))
        _, mat = probe(archive, ServeConfig(decode_engine="matmul"))
        for key in (
            "stripes",
            "cases",
            "stripes_failing_now",
            "at_risk_devices",
            "tolerates_any_single_failure",
        ):
            assert bit[key] == mat[key], key

    def test_failed_devices_reduce_headroom(self):
        archive, _names = small_archive(severity=0)
        # Fail enough devices that at least one more loss is fatal
        # somewhere: severity is per-archive seeded, so do it by hand.
        for dev in range(0, 12):
            archive.devices[dev].state = DeviceState.FAILED
        _, report = probe(archive)
        assert not report["tolerates_any_single_failure"] or (
            report["at_risk_devices"] == []
            and report["stripes_failing_now"] == []
        )

    def test_metrics_and_stats_expose_engine(self):
        archive, _names = small_archive()
        service = ReconstructionService(
            archive, ServeConfig(decode_engine="matmul")
        )
        report = service.degraded_headroom()
        assert report["engine"] == "matmul"
        stats = service.stats()
        assert stats["decode_engine"] == "matmul"
        assert stats["counters"]["serve.headroom_probes"] == 1
        assert stats["gauges"]["serve.at_risk_devices"] == len(
            report["at_risk_devices"]
        )

    def test_probe_works_alongside_serving(self):
        archive, names = small_archive()

        async def run():
            async with ReconstructionService(
                archive, ServeConfig(batch_window=0.0)
            ) as service:
                data = await service.submit(names[0])
                report = service.degraded_headroom()
                return data, report

        data, report = asyncio.run(run())
        assert data and report["stripes"] > 0

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="decode_engine"):
            ServeConfig(decode_engine="quantum")

    def test_env_resolution(self, monkeypatch):
        archive, _names = small_archive()
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "matmul")
        service = ReconstructionService(archive)
        assert service.decode_engine == "matmul"
