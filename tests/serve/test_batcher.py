"""Micro-batcher edge cases, deterministic via an injected clock."""

import pytest

from repro.serve import MicroBatcher


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestZeroWindow:
    def test_add_closes_immediately(self):
        clock = FakeClock()
        b = MicroBatcher(window=0.0, clock=clock)
        batch = b.add("k", "item")
        assert batch is not None
        assert batch.items == ["item"]
        assert len(b) == 0
        assert b.open_batches == 0

    def test_each_item_gets_its_own_batch(self):
        b = MicroBatcher(window=0.0, clock=FakeClock())
        first = b.add("k", 1)
        second = b.add("k", 2)
        assert first is not second
        assert len(first) == len(second) == 1


class TestWindowedBatching:
    def test_items_accumulate_until_window(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        assert b.add("k", 1) is None
        assert b.add("k", 2) is None
        assert len(b) == 2
        assert b.open_batches == 1

    def test_empty_window_flush(self):
        # pop_due with nothing open returns [], not an error — the
        # dispatcher's timer can always fire safely.
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        assert b.pop_due() == []
        clock.advance(5.0)
        assert b.pop_due() == []

    def test_pop_due_respects_window(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        b.add("k", 1)
        clock.advance(0.5)
        assert b.pop_due() == []  # not due yet
        clock.advance(0.5)
        (batch,) = b.pop_due()
        assert batch.items == [1]
        assert b.open_batches == 0

    def test_pop_due_with_explicit_now(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        b.add("k", 1)
        assert b.pop_due(now=0.5) == []
        assert len(b.pop_due(now=1.0)) == 1

    def test_next_due_is_oldest_batch_expiry(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        assert b.next_due() is None
        b.add("a", 1)
        clock.advance(0.25)
        b.add("b", 2)
        assert b.next_due() == pytest.approx(1.0)  # oldest opened at 0

    def test_late_item_joins_open_batch_without_extending_it(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        b.add("k", 1)
        clock.advance(0.9)
        b.add("k", 2)  # joins; window still anchored at opened_at=0
        clock.advance(0.1)
        (batch,) = b.pop_due()
        assert batch.items == [1, 2]

    def test_keys_expire_independently(self):
        clock = FakeClock()
        b = MicroBatcher(window=1.0, clock=clock)
        b.add("a", 1)
        clock.advance(0.6)
        b.add("b", 2)
        clock.advance(0.4)  # t=1.0: only "a" is due
        due = b.pop_due()
        assert [batch.key for batch in due] == ["a"]
        assert b.open_batches == 1


class TestMaxBatch:
    def test_full_batch_closes_early(self):
        clock = FakeClock()
        b = MicroBatcher(window=10.0, max_batch=3, clock=clock)
        assert b.add("k", 1) is None
        assert b.add("k", 2) is None
        batch = b.add("k", 3)
        assert batch is not None
        assert batch.items == [1, 2, 3]
        assert b.open_batches == 0

    def test_next_add_opens_a_fresh_batch(self):
        clock = FakeClock()
        b = MicroBatcher(window=10.0, max_batch=2, clock=clock)
        b.add("k", 1)
        assert b.add("k", 2) is not None
        assert b.add("k", 3) is None  # new batch, not the closed one
        assert len(b) == 1


class TestDrain:
    def test_pop_all_returns_everything_regardless_of_age(self):
        clock = FakeClock()
        b = MicroBatcher(window=60.0, clock=clock)
        b.add("a", 1)
        b.add("b", 2)
        batches = b.pop_all()
        assert sorted(batch.key for batch in batches) == ["a", "b"]
        assert len(b) == 0
        assert b.pop_all() == []


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(window=-0.1)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
