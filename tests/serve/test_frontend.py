"""TCP front-end protocol tests (ephemeral port, in-process service)."""

import asyncio
import hashlib
import json

from repro.core import tornado_graph
from repro.serve import (
    ReconstructionService,
    ServeConfig,
    seeded_archive,
    start_frontend,
)


def small_archive():
    graph = tornado_graph(16, seed=3, min_final_lefts=6)
    return seeded_archive(
        graph, objects=2, object_size=1024, block_size=64, seed=0
    )


async def _roundtrip(requests):
    """Run one client session against a fresh service; returns replies."""
    archive, names = small_archive()
    expected = {name: archive.get(name) for name in names}
    async with ReconstructionService(
        archive, ServeConfig(batch_window=0.0)
    ) as service:
        server = await start_frontend(service, port=0)
        try:
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            replies = []
            for request in requests:
                writer.write(request + b"\n")
                await writer.drain()
                replies.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
        finally:
            server.close()
            await server.wait_closed()
    return names, expected, replies


class TestFrontend:
    def test_get_returns_size_and_digest(self):
        names, expected, (reply,) = asyncio.run(
            _roundtrip([json.dumps({"op": "get", "name": "object-000"}).encode()])
        )
        data = expected["object-000"]
        assert reply == {
            "ok": True,
            "name": "object-000",
            "size": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
        }

    def test_ping_stats_and_errors(self):
        _, _, replies = asyncio.run(
            _roundtrip(
                [
                    json.dumps({"op": "ping"}).encode(),
                    json.dumps({"op": "stats"}).encode(),
                    json.dumps({"op": "get", "name": "missing"}).encode(),
                    json.dumps({"op": "get"}).encode(),
                    json.dumps({"op": "bogus"}).encode(),
                    b"not json at all",
                ]
            )
        )
        ping, stats, missing, nameless, bogus, garbage = replies
        assert ping == {"ok": True, "pong": True}
        assert stats["ok"] is True
        assert stats["stats"]["state"] == "running"
        assert "counters" in stats["stats"]
        assert missing["ok"] is False
        assert missing["error"] == "KeyError"
        assert nameless["ok"] is False
        assert nameless["error"] == "BadRequest"
        assert bogus["ok"] is False
        assert "unknown op" in bogus["message"]
        assert garbage["ok"] is False
        assert "invalid JSON" in garbage["message"]

    def test_multiple_gets_share_one_connection(self):
        names, expected, replies = asyncio.run(
            _roundtrip(
                [
                    json.dumps({"op": "get", "name": n}).encode()
                    for n in ["object-000", "object-001", "object-000"]
                ]
            )
        )
        assert [r["ok"] for r in replies] == [True, True, True]
        assert replies[0]["sha256"] == replies[2]["sha256"]
        assert replies[1]["sha256"] == hashlib.sha256(
            expected["object-001"]
        ).hexdigest()

    def test_metrics_op_renders_prometheus_text(self):
        _, _, (get_reply, metrics_reply) = asyncio.run(
            _roundtrip(
                [
                    json.dumps({"op": "get", "name": "object-000"}).encode(),
                    json.dumps({"op": "metrics"}).encode(),
                ]
            )
        )
        assert get_reply["ok"] is True
        assert metrics_reply["ok"] is True
        text = metrics_reply["metrics"]
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 1" in text
        # Request latency surfaces as a cumulative-bucket histogram.
        assert "# TYPE repro_serve_request_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_serve_request_latency_seconds_count 1" in text


class TestConcurrentWrites:
    def test_pipelined_replies_never_interleave(self):
        """Regression: each request line is handled in its own task, so
        concurrent handlers race to write one shared connection — every
        reply line must still be a complete, parseable frame, correlated
        by the echoed ``id``."""

        async def run():
            archive, names = small_archive()
            async with ReconstructionService(
                archive, ServeConfig(batch_window=0.0)
            ) as service:
                server = await start_frontend(service, port=0)
                try:
                    host, port = server.sockets[0].getsockname()[:2]
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    total = 60
                    # One burst write of many pipelined v1 requests.
                    burst = b"".join(
                        json.dumps(
                            {
                                "v": 1,
                                "id": i,
                                "op": "get",
                                "name": names[i % len(names)],
                            }
                        ).encode()
                        + b"\n"
                        for i in range(total)
                    )
                    writer.write(burst)
                    await writer.drain()
                    replies = []
                    for _ in range(total):
                        replies.append(
                            json.loads(await reader.readline())
                        )
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
            return replies

        replies = asyncio.run(run())
        assert all(r["ok"] for r in replies)
        # Every request answered exactly once, whatever the order.
        assert sorted(r["id"] for r in replies) == list(range(60))
