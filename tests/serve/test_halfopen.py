"""Half-open and partitioned connections: deadlines, not hangs.

The failure modes that actually page people are not clean refusals —
they are peers that accept TCP and then go dark, die mid-frame, or
feed garbage down a pipelined connection.  These tests pin the
contract for each: the blocking clients surface
:class:`DeadlineExceededError` / :class:`ConnectionError`, the
coordinator surfaces :class:`NodeDownError` after its RPC deadline and
retry policy, and the line server answers garbage with a structured
error frame while keeping the connection up.
"""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, StorageNode, start_storage_node
from repro.cluster.coordinator import NodeDownError, NodeLink
from repro.graphs import tornado_catalog_graph
from repro.resilience import RetryPolicy
from repro.serve.client import ClusterClient, ProtocolClient
from repro.serve.errors import DeadlineExceededError, NodeUnreachableError
from repro.serve.lineserver import start_line_server
from repro.serve.protocol import PingRequest, PongResponse


def run(coro):
    return asyncio.run(coro)


async def silent_server():
    """Accepts connections, reads forever, never answers."""

    async def handle(reader, writer):
        try:
            while await reader.readline():
                pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, "127.0.0.1", 0)


async def midframe_server():
    """Answers every request with half a frame, then hangs up."""

    async def handle(reader, writer):
        await reader.readline()
        writer.write(b'{"v": 1, "kind": "pong", "po')  # no newline
        await writer.drain()
        writer.close()

    return await asyncio.start_server(handle, "127.0.0.1", 0)


def port_of(server):
    return server.sockets[0].getsockname()[1]


class TestBlockingClient:
    def test_accepted_but_never_answered_raises_deadline(self):
        async def check():
            server = await silent_server()

            def exercise():
                client = ProtocolClient(
                    "127.0.0.1", port_of(server), timeout=0.2
                )
                t0 = time.perf_counter()
                with pytest.raises(DeadlineExceededError) as info:
                    client.ping()
                elapsed = time.perf_counter() - t0
                assert "no reply" in str(info.value)
                assert elapsed < 5.0  # a deadline, not a hang
                client.close()

            await asyncio.to_thread(exercise)
            server.close()

        run(check())

    def test_deadline_is_not_retried_even_with_a_policy(self):
        async def check():
            server = await silent_server()

            def exercise():
                client = ProtocolClient(
                    "127.0.0.1",
                    port_of(server),
                    timeout=0.2,
                    retry=RetryPolicy(max_attempts=5, base_delay=0.01),
                )
                t0 = time.perf_counter()
                with pytest.raises(DeadlineExceededError):
                    client.ping()
                # One deadline's worth of waiting, not five.
                assert time.perf_counter() - t0 < 1.0
                client.close()

            await asyncio.to_thread(exercise)
            server.close()

        run(check())

    def test_close_mid_frame_raises_connection_error(self):
        async def check():
            server = await midframe_server()

            def exercise():
                client = ProtocolClient(
                    "127.0.0.1", port_of(server), timeout=1.0
                )
                with pytest.raises(ConnectionError) as info:
                    client.ping()
                assert "mid-frame" in str(info.value)
                client.close()

            await asyncio.to_thread(exercise)
            server.close()

        run(check())


class TestLineServerMalformedFrames:
    def test_garbage_mid_pipeline_answers_error_and_stays_up(self):
        async def check():
            async def handler(request, envelope):
                assert isinstance(request, PingRequest)
                return PongResponse()

            server = await start_line_server(handler, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            # A valid ping, then garbage, then another valid ping —
            # all pipelined on one connection.
            writer.write(b'{"v": 1, "op": "ping", "id": 1}\n')
            writer.write(b"this is not JSON\n")
            writer.write(b'{"v": 1, "op": "nonsense.op", "id": 2}\n')
            writer.write(b'{"v": 1, "op": "ping", "id": 3}\n')
            await writer.drain()
            frames = [
                json.loads(await reader.readline()) for _ in range(4)
            ]
            by_kind = {}
            for frame in frames:
                by_kind.setdefault(frame["kind"], []).append(frame)
            # Both pings were answered: the connection survived the
            # garbage between them.
            assert len(by_kind["pong"]) == 2
            codes = {f["code"] for f in by_kind["error"]}
            assert codes == {"bad_request", "unknown_op"}
            writer.close()
            server.close()

        run(check())


def payload_bytes(n, seed=0):
    return np.random.default_rng(seed).bytes(n)


class TestCoordinatorRpcDeadlines:
    def test_dark_node_surfaces_node_down_after_deadline(self):
        async def check():
            server = await silent_server()
            coord = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                rpc_timeout=0.15,
                retry=None,
            )
            link = NodeLink("dark", "127.0.0.1", port_of(server))
            t0 = time.perf_counter()
            with pytest.raises(NodeDownError) as info:
                await coord._rpc(link, PingRequest())
            assert "RPC deadline" in str(info.value)
            assert time.perf_counter() - t0 < 5.0
            assert link.alive is False
            server.close()

        run(check())

    def test_node_down_is_a_node_unreachable_error(self):
        # The wire taxonomy: NodeDownError travels as ``node_down``.
        assert issubclass(NodeDownError, NodeUnreachableError)

    def test_retry_policy_survives_one_connection_blip(self):
        async def check():
            attempts = {"count": 0}

            async def handle(reader, writer):
                attempts["count"] += 1
                if attempts["count"] == 1:
                    writer.close()  # first connection dies instantly
                    return
                line = await reader.readline()
                request_id = json.loads(line)["id"]
                writer.write(
                    json.dumps(
                        {"v": 1, "ok": True, "kind": "pong",
                         "pong": True, "id": request_id}
                    ).encode() + b"\n"
                )
                await writer.drain()

            server = await asyncio.start_server(
                handle, "127.0.0.1", 0
            )
            coord = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.01, seed=1
                ),
            )
            link = NodeLink("blippy", "127.0.0.1", port_of(server))
            response = await coord._rpc(link, PingRequest())
            assert response.pong is True
            assert attempts["count"] == 2
            assert link.alive is True
            server.close()

        run(check())

    def test_degraded_read_decodes_around_a_partitioned_node(self):
        async def check():
            coord = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                rpc_timeout=0.15,
                retry=None,
            )
            nodes, servers = {}, {}
            for i in range(3):
                node = StorageNode(f"node-{i}", seed=i)
                server = await start_storage_node(node, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                await coord.register(f"node-{i}", host, port)
                nodes[f"node-{i}"], servers[f"node-{i}"] = node, server
            payload = payload_bytes(3000, seed=1)
            await coord.put("obj", payload)
            # The partitioned node accepts TCP but never answers: the
            # read must decode around it after the RPC deadline, not
            # hang on it.
            nodes["node-1"].partitioned = True
            got = await coord.get("obj", want_payload=True)
            assert got.payload == payload
            # Heal: the node answers again after a fresh probe.
            nodes["node-1"].partitioned = False
            coord.nodes["node-1"].alive = True
            assert (await coord.probe())["node-1"] is True
            for server in servers.values():
                server.close()

        run(check())


class TestNodeFaultModes:
    def test_partitioned_node_admin_is_out_of_band(self):
        async def check():
            node = StorageNode("n0", seed=0)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]

            def exercise():
                with ClusterClient(host, port, timeout=0.3) as client:
                    client.block_put("k", b"data")
                    client.node_admin("partition")
                    # Data plane parks until the deadline...
                    with pytest.raises(DeadlineExceededError):
                        client.block_get("k")
                    # ...but the admin channel still answers, and
                    # healing restores the data plane.
                    stats = client.node_admin("heal")
                    assert stats["partitioned"] is False
                    assert client.block_get("k") == b"data"

            await asyncio.to_thread(exercise)
            server.close()

        run(check())

    def test_slow_node_delays_data_plane_until_healed(self):
        async def check():
            node = StorageNode("n0", seed=0)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]

            def exercise():
                with ClusterClient(host, port, timeout=5.0) as client:
                    client.block_put("k", b"data")
                    client.node_admin("slow", delay_seconds=0.2)
                    t0 = time.perf_counter()
                    assert client.block_get("k") == b"data"
                    assert time.perf_counter() - t0 >= 0.2
                    client.node_admin("heal")
                    t0 = time.perf_counter()
                    assert client.block_get("k") == b"data"
                    assert time.perf_counter() - t0 < 0.2

            await asyncio.to_thread(exercise)
            server.close()

        run(check())

    def test_partition_blocks_pings_hence_liveness_probes(self):
        async def check():
            node = StorageNode("n0", seed=0)
            server = await start_storage_node(node, port=0)
            host, port = server.sockets[0].getsockname()[:2]
            coord = ClusterCoordinator(
                tornado_catalog_graph(3),
                block_size=64,
                rpc_timeout=0.15,
                retry=None,
            )
            await coord.register("n0", host, port)
            node.partitioned = True
            assert (await coord.probe())["n0"] is False
            node.partitioned = False
            coord.nodes["n0"].alive = True
            assert (await coord.probe())["n0"] is True
            server.close()

        run(check())
