"""Determinism and accounting of the open-loop load generator."""

import asyncio

import pytest

from repro.core import tornado_graph
from repro.serve import (
    LoadGenConfig,
    ReconstructionService,
    ServeConfig,
    arrival_schedule,
    run_loadgen,
    seeded_archive,
)


def small_archive(severity: int = 0):
    graph = tornado_graph(16, seed=3, min_final_lefts=6)
    return seeded_archive(
        graph,
        objects=3,
        object_size=1024,
        block_size=64,
        severity=severity,
        seed=0,
    )


class TestArrivalSchedule:
    def test_same_seed_same_workload(self):
        names = ["a", "b", "c"]
        config = LoadGenConfig(requests=50, rate=1000.0, seed=7)
        assert arrival_schedule(names, config) == arrival_schedule(
            names, config
        )

    def test_different_seeds_differ(self):
        names = ["a", "b", "c"]
        one = arrival_schedule(names, LoadGenConfig(seed=1))
        two = arrival_schedule(names, LoadGenConfig(seed=2))
        assert one != two

    def test_shape_and_range(self):
        names = ["a", "b"]
        gaps, picks = arrival_schedule(
            names, LoadGenConfig(requests=40, rate=500.0, seed=0)
        )
        assert len(gaps) == len(picks) == 40
        assert all(gap >= 0 for gap in gaps)
        assert set(picks) <= set(names)

    def test_mean_gap_tracks_rate(self):
        gaps, _ = arrival_schedule(
            ["a"], LoadGenConfig(requests=2000, rate=1000.0, seed=3)
        )
        assert sum(gaps) / len(gaps) == pytest.approx(1e-3, rel=0.2)


class TestLoadGenConfig:
    def test_zero_requests_rejected(self):
        with pytest.raises(ValueError):
            LoadGenConfig(requests=0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            LoadGenConfig(rate=0.0)


class TestRunLoadgen:
    def test_all_requests_complete_on_healthy_archive(self):
        archive, names = small_archive(severity=2)
        config = LoadGenConfig(requests=40, rate=4000.0, seed=1)

        async def scenario():
            async with ReconstructionService(
                archive, ServeConfig(batch_window=0.001)
            ) as svc:
                return await run_loadgen(svc, names, config)

        report = asyncio.run(scenario())
        assert report.requests == 40
        assert report.completed == 40
        assert report.shed == 0
        assert report.errors == 0
        assert report.bytes_served == 40 * 1024
        assert report.throughput_rps > 0
        assert set(report.latency) == {"mean", "p50", "p95", "p99", "max"}

    def test_report_round_trips_to_dict(self):
        archive, names = small_archive()
        config = LoadGenConfig(requests=10, rate=5000.0, seed=2)

        async def scenario():
            async with ReconstructionService(archive) as svc:
                return await run_loadgen(svc, names, config)

        report = asyncio.run(scenario())
        payload = report.to_dict()
        assert payload["completed"] == 10
        assert payload["throughput_rps"] == report.throughput_rps
        assert "req/s" in report.describe()

    def test_sheds_are_counted_not_raised(self):
        # A queue bound of 1 under a fast burst must shed most arrivals
        # while the first request's batch window is still open; the
        # report absorbs them instead of the generator crashing.
        archive, names = small_archive()
        config = LoadGenConfig(requests=50, rate=1e6, seed=0)

        async def scenario():
            async with ReconstructionService(
                archive, ServeConfig(batch_window=0.2, queue_limit=1)
            ) as svc:
                report = await run_loadgen(svc, names, config)
                return report, svc.stats()

        report, stats = asyncio.run(scenario())
        assert report.shed > 0
        assert report.completed + report.shed == 50
        assert stats["counters"]["serve.shed"] == report.shed

    def test_empty_name_list_rejected(self):
        archive, _ = small_archive()

        async def scenario():
            async with ReconstructionService(archive) as svc:
                await run_loadgen(svc, [], LoadGenConfig())

        with pytest.raises(ValueError):
            asyncio.run(scenario())


class TestSeededArchive:
    def test_same_seed_same_world(self):
        one, names_one = small_archive(severity=4)
        two, names_two = small_archive(severity=4)
        assert names_one == names_two
        assert one.devices.failed_ids == two.devices.failed_ids
        assert all(one.get(n) == two.get(n) for n in names_one)

    def test_severity_bounded_by_pool(self):
        graph = tornado_graph(16, seed=3, min_final_lefts=6)
        with pytest.raises(ValueError):
            seeded_archive(graph, severity=graph.num_nodes)
