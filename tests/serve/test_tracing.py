"""End-to-end tracing + manifest tests for the reconstruction service.

The satellite contract under test: a request produces a request →
batch → decode → worker span tree with no orphans; a worker crash
keeps the SAME trace ID across the retried decode (new span,
``retry=1``); each service lifecycle emits a RunManifest.
"""

import asyncio
import json

import pytest

from repro.obs.analyze import (
    build_trace_trees,
    render_trace_tree,
    span_records,
)
from repro.obs.manifest import RunManifest
from repro.obs.trace import Tracer, trace_capture, trace_span
from repro.serve import ReconstructionService, ServeConfig

from .test_service import small_archive


def run(coro):
    return asyncio.run(coro)


def spans_by_name(records):
    out = {}
    for rec in span_records(records):
        out.setdefault(rec["name"], []).append(rec)
    return out


class TestRequestSpanTree:
    def test_inline_decode_full_tree(self):
        archive, names = small_archive()

        async def scenario(tracer):
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0, workers=0)
            )
            async with svc:
                with trace_span("client"):
                    await svc.submit(names[0])
            return tracer.records

        with trace_capture(Tracer(seed=5)) as t:
            records = run(scenario(t))

        roots, orphans = build_trace_trees(span_records(records))
        assert orphans == []
        (root,) = roots
        chain = []
        node = root
        while node:
            chain.append(node.name)
            node = node.children[0] if node.children else None
        assert chain == [
            "client",
            "serve.request",
            "serve.batch",
            "serve.decode",
            "serve.worker.decode",
        ]
        # One trace end to end, inline decode marked as retry 0.
        assert len({r["trace_id"] for r in records}) == 1
        by_name = spans_by_name(records)
        assert by_name["serve.decode"][0]["attrs"]["retry"] == 0
        assert by_name["serve.request"][0]["attrs"]["outcome"] == "ok"

    def test_coalesced_requests_link_to_shared_batch(self):
        archive, names = small_archive()

        async def scenario(tracer):
            svc = ReconstructionService(
                archive,
                ServeConfig(batch_window=0.05, max_batch=8, workers=0),
            )
            async with svc:
                # Two roots (no client umbrella): each submit starts
                # its own trace; they coalesce into one batch.
                await asyncio.gather(
                    svc.submit(names[0]), svc.submit(names[1])
                )
            return tracer.records

        with trace_capture(Tracer(seed=5)) as t:
            records = run(scenario(t))

        by_name = spans_by_name(records)
        assert len(by_name["serve.request"]) == 2
        (batch,) = by_name["serve.batch"]
        req_traces = {r["trace_id"] for r in by_name["serve.request"]}
        assert batch["trace_id"] in req_traces
        # The other request's trace is linked, not lost.
        linked = set(batch["attrs"].get("links", []))
        assert linked == req_traces - {batch["trace_id"]}

    def test_deterministic_trace_ids(self):
        archive, names = small_archive()

        async def scenario():
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0, workers=0)
            )
            async with svc:
                await svc.submit(names[0])

        def traced_ids():
            with trace_capture(Tracer(seed=11)) as t:
                run(scenario())
            return [
                (r["name"], r["trace_id"], r["span_id"], r["parent_id"])
                for r in t.records
            ]

        assert traced_ids() == traced_ids()

    def test_untraced_service_unaffected(self):
        archive, names = small_archive()

        async def scenario():
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0, workers=0)
            )
            async with svc:
                return await svc.submit(names[0])

        assert run(scenario()) == archive.get(names[0])


class TestCrashRetryTracePropagation:
    def test_retry_same_trace_new_span(self):
        archive, names = small_archive()

        async def scenario(tracer):
            svc = ReconstructionService(
                archive,
                ServeConfig(
                    batch_window=0.0, workers=1, worker_retries=2
                ),
            )
            async with svc:
                with trace_span("client"):
                    svc.inject_worker_crash()
                    data = await svc.submit(names[0])
            assert data == archive.get(names[0])
            return tracer.records

        with trace_capture(Tracer(seed=5)) as t:
            records = run(scenario(t))

        by_name = spans_by_name(records)
        decodes = sorted(
            by_name["serve.decode"], key=lambda r: r["attrs"]["retry"]
        )
        assert len(decodes) == 2
        failed, retried = decodes
        # Same trace ID across the crash; new span for the retry.
        assert failed["trace_id"] == retried["trace_id"]
        assert failed["span_id"] != retried["span_id"]
        assert failed["attrs"]["retry"] == 0
        assert failed["attrs"]["error"] == "BrokenProcessPool"
        assert retried["attrs"]["retry"] == 1
        assert "error" not in retried["attrs"]
        # Both attempts are siblings under the same batch span.
        (batch,) = by_name["serve.batch"]
        assert failed["parent_id"] == batch["span_id"]
        assert retried["parent_id"] == batch["span_id"]
        # The worker's shipped-back span hangs off the retry attempt.
        (worker,) = by_name["serve.worker.decode"]
        assert worker["parent_id"] == retried["span_id"]
        # And the whole thing still assembles orphan-free.
        roots, orphans = build_trace_trees(span_records(records))
        assert orphans == []
        assert "orphaned spans: none" in render_trace_tree(
            roots, orphans
        )


class TestServiceManifest:
    def test_manifest_written_on_close(self, tmp_path):
        archive, names = small_archive()
        path = tmp_path / "svc.manifest.json"

        async def scenario():
            svc = ReconstructionService(
                archive,
                ServeConfig(batch_window=0.0, workers=0),
                seed=123,
                manifest_path=path,
            )
            async with svc:
                await svc.submit(names[0])
            return svc

        svc = run(scenario())
        manifest = RunManifest.load(path)
        assert manifest.command == "serve"
        assert manifest.seed == 123
        assert manifest.wall_seconds is not None
        assert manifest.config["workers"] == 0
        assert manifest.extra["graph"] == archive.graph.name
        assert manifest.extra["engine"] == svc.decode_engine
        assert manifest.extra["objects"] == len(archive.objects)
        snap = manifest.extra["final_snapshot"]
        assert snap["counters"]["serve.completed"] == 1
        # In-memory copy matches what was persisted.
        assert svc.manifest.fingerprint() == manifest.fingerprint()

    def test_manifest_graph_hash_matches_plan_key(self, tmp_path):
        from repro.serve.plancache import graph_key

        archive, names = small_archive()
        path = tmp_path / "m.json"

        async def scenario():
            svc = ReconstructionService(
                archive,
                ServeConfig(batch_window=0.0),
                manifest_path=path,
            )
            async with svc:
                pass

        run(scenario())
        manifest = RunManifest.load(path)
        assert manifest.extra["graph_hash"] == graph_key(archive.graph)

    def test_no_manifest_path_keeps_memory_only(self):
        archive, _ = small_archive()

        async def scenario():
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0)
            )
            async with svc:
                pass
            return svc

        svc = run(scenario())
        assert svc.manifest is not None
        assert svc.manifest.command == "serve"

    def test_manifest_emitted_as_event_when_metrics_on(self):
        from repro.obs import capture

        archive, _ = small_archive()

        async def scenario():
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0)
            )
            async with svc:
                pass

        with capture() as reg:
            run(scenario())
        events = [
            e for e in reg.events if e["event"] == "serve.run_manifest"
        ]
        assert len(events) == 1
        assert events[0]["command"] == "serve"

    def test_manifest_json_round_trips(self, tmp_path):
        archive, _ = small_archive()
        path = tmp_path / "m.json"

        async def scenario():
            svc = ReconstructionService(
                archive,
                ServeConfig(batch_window=0.0),
                seed=7,
                manifest_path=path,
            )
            async with svc:
                pass

        run(scenario())
        raw = json.loads(path.read_text())
        assert raw["fingerprint"] == RunManifest.load(path).fingerprint()


class TestWorkerSpanShipping:
    def test_pooled_worker_spans_ship_back(self):
        archive, names = small_archive()

        async def scenario(tracer):
            svc = ReconstructionService(
                archive, ServeConfig(batch_window=0.0, workers=1)
            )
            async with svc:
                with trace_span("client"):
                    await svc.submit(names[0])
            return tracer.records

        with trace_capture(Tracer(seed=5)) as t:
            records = run(scenario(t))

        by_name = spans_by_name(records)
        (worker,) = by_name["serve.worker.decode"]
        (decode,) = by_name["serve.decode"]
        assert worker["parent_id"] == decode["span_id"]
        assert worker["trace_id"] == decode["trace_id"]
        assert worker["attrs"]["stripes"] >= 1

    @pytest.mark.parametrize("workers", [0, 1])
    def test_worker_span_ids_deterministic(self, workers):
        archive, names = small_archive()

        async def scenario():
            svc = ReconstructionService(
                archive,
                ServeConfig(batch_window=0.0, workers=workers),
            )
            async with svc:
                with trace_span("client"):
                    await svc.submit(names[0])

        def worker_ids():
            with trace_capture(Tracer(seed=5)) as t:
                run(scenario())
            return [
                (r["trace_id"], r["span_id"])
                for r in t.records
                if r["name"] == "serve.worker.decode"
            ]

        first, second = worker_ids(), worker_ids()
        assert first and first == second
