"""Behavioural tests for the asyncio reconstruction service.

Everything here runs on ``asyncio.run`` inside synchronous tests (the
repo does not use pytest-asyncio) and drives timing through either a
zero batch window or an injected fake clock, so outcomes are
deterministic.
"""

import asyncio

import pytest

from repro.core import tornado_graph
from repro.resilience import RetryPolicy
from repro.serve import (
    DeadlineExceededError,
    ReconstructionService,
    ServeConfig,
    ServiceClosedError,
    ServiceOverloadedError,
    seeded_archive,
)
from repro.storage import DataLossError, TransientUnavailableError


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def small_archive(severity: int = 0, objects: int = 2):
    graph = tornado_graph(16, seed=3, min_final_lefts=6)
    return seeded_archive(
        graph,
        objects=objects,
        object_size=1024,
        block_size=64,
        severity=severity,
        seed=0,
    )


UNBATCHED = ServeConfig(batch_window=0.0)


class TestRoundTrip:
    def test_serves_objects_intact(self):
        archive, names = small_archive()
        expected = {name: archive.get(name) for name in names}

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                return {n: await svc.submit(n) for n in names}

        assert asyncio.run(scenario()) == expected

    def test_reconstructs_around_failed_devices(self):
        archive, names = small_archive(severity=3)
        expected = {name: archive.get(name) for name in names}

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                return {n: await svc.submit(n) for n in names}

        assert asyncio.run(scenario()) == expected

    def test_unknown_object_raises_key_error(self):
        archive, _ = small_archive()

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                await svc.submit("no-such-object")

        with pytest.raises(KeyError):
            asyncio.run(scenario())

    def test_plan_cache_hit_on_repeat_request(self):
        archive, names = small_archive(severity=2)

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                await svc.submit(names[0])
                await svc.submit(names[0])
                return svc.stats()

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.plan_cache.hits"] >= 1


class TestCoalescing:
    def test_concurrent_same_object_requests_share_one_batch(self):
        archive, names = small_archive()
        expected = archive.get(names[0])
        clock = FakeClock()
        config = ServeConfig(batch_window=60.0, max_batch=32)

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            futures = [svc.try_submit(names[0]) for _ in range(5)]
            await svc.drain()  # flushes the still-open batch
            results = [f.result() for f in futures]
            stats = svc.stats()
            await svc.close()
            return results, stats

        results, stats = asyncio.run(scenario())
        assert results == [expected] * 5
        assert stats["counters"]["serve.batches"] == 1
        assert stats["counters"]["serve.coalesced"] == 4
        assert stats["histograms"]["serve.batch_size"]["max"] == 5

    def test_full_batch_dispatches_before_window(self):
        archive, names = small_archive()
        clock = FakeClock()
        config = ServeConfig(batch_window=60.0, max_batch=2)

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            futures = [svc.try_submit(names[0]) for _ in range(4)]
            # Let the dispatcher consume the queue: both pairs close on
            # max_batch, no clock advance needed.
            await asyncio.gather(*futures)
            stats = svc.stats()
            await svc.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.batches"] == 2


class TestBackpressure:
    def test_sheds_visibly_when_queue_full(self):
        archive, names = small_archive()
        config = ServeConfig(batch_window=0.0, queue_limit=2)

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                admitted = [svc.try_submit(names[0]) for _ in range(2)]
                with pytest.raises(ServiceOverloadedError) as exc_info:
                    svc.try_submit(names[0])
                await asyncio.gather(*admitted)  # admitted still finish
                return exc_info.value, svc.stats()

        exc, stats = asyncio.run(scenario())
        assert exc.queue_depth == 2
        assert stats["counters"]["serve.shed"] == 1
        assert stats["counters"]["serve.completed"] == 2

    def test_capacity_frees_as_requests_complete(self):
        archive, names = small_archive()
        config = ServeConfig(batch_window=0.0, queue_limit=1)

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                for _ in range(3):  # sequential: never over the limit
                    await svc.submit(names[0])
                return svc.stats()

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.completed"] == 3
        assert "serve.shed" not in stats["counters"]


class TestDeadlines:
    def test_deadline_expires_while_batching(self):
        archive, names = small_archive()
        clock = FakeClock()
        config = ServeConfig(batch_window=60.0)

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            future = svc.try_submit(names[0], deadline=1.0)
            clock.advance(2.0)  # window still open; deadline long gone
            await svc.drain()
            with pytest.raises(DeadlineExceededError):
                future.result()
            stats = svc.stats()
            await svc.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.deadline_exceeded"] == 1
        assert "serve.completed" not in stats["counters"]

    def test_deadline_expires_mid_batch(self):
        archive, names = small_archive()
        clock = FakeClock()
        real_stripe_blocks = archive.stripe_blocks

        def slow_stripe_blocks(name, record):
            clock.advance(2.0)  # decode work outlives the deadline
            return real_stripe_blocks(name, record)

        archive.stripe_blocks = slow_stripe_blocks
        config = ServeConfig(batch_window=0.0)

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            with pytest.raises(DeadlineExceededError):
                await svc.submit(names[0], deadline=1.0)
            stats = svc.stats()
            await svc.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.deadline_exceeded"] == 1

    def test_default_deadline_applies(self):
        archive, names = small_archive()
        clock = FakeClock()
        config = ServeConfig(batch_window=60.0, default_deadline=0.5)

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            future = svc.try_submit(names[0])
            clock.advance(1.0)
            await svc.drain()
            with pytest.raises(DeadlineExceededError):
                future.result()
            await svc.close()

        asyncio.run(scenario())


class TestLifecycle:
    def test_submit_before_start_is_refused(self):
        archive, names = small_archive()
        svc = ReconstructionService(archive, UNBATCHED)
        with pytest.raises(ServiceClosedError):
            svc.try_submit(names[0])

    def test_drain_finishes_inflight_then_refuses_new_work(self):
        archive, names = small_archive()
        expected = archive.get(names[0])

        async def scenario():
            svc = ReconstructionService(archive, UNBATCHED)
            await svc.start()
            futures = [svc.try_submit(names[0]) for _ in range(6)]
            await svc.drain()
            results = [f.result() for f in futures]
            with pytest.raises(ServiceClosedError):
                svc.try_submit(names[0])
            await svc.close()
            return results

        assert asyncio.run(scenario()) == [expected] * 6

    def test_state_transitions(self):
        archive, _ = small_archive()

        async def scenario():
            svc = ReconstructionService(archive, UNBATCHED)
            states = [svc.state]
            await svc.start()
            states.append(svc.state)
            await svc.close()
            states.append(svc.state)
            return states

        assert asyncio.run(scenario()) == ["idle", "running", "closed"]

    def test_close_is_idempotent(self):
        archive, _ = small_archive()

        async def scenario():
            svc = ReconstructionService(archive, UNBATCHED)
            await svc.start()
            await svc.close()
            await svc.close()

        asyncio.run(scenario())

    def test_stats_shape(self):
        archive, names = small_archive()

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                await svc.submit(names[0])
                return svc.stats()

        stats = asyncio.run(scenario())
        assert stats["state"] == "running"
        assert stats["pending"] == 0
        assert set(stats["plan_cache"]) == {
            "size",
            "capacity",
            "hits",
            "misses",
            "evictions",
        }
        assert stats["counters"]["serve.requests"] == 1
        assert stats["gauges"]["serve.queue_depth"] == 0
        assert "serve.request_latency_seconds" in stats["histograms"]


class TestDegradedReads:
    def test_retry_outlasts_transient_outage(self):
        archive, names = small_archive()
        every_device = range(len(archive.devices))
        archive.devices.interrupt(every_device)

        def repair(_delay: float) -> None:
            archive.devices.restore(every_device)

        config = ServeConfig(
            batch_window=0.0,
            retry=RetryPolicy(max_attempts=2, sleep=repair),
        )
        expected_size = archive.objects[names[0]].size

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                data = await svc.submit(names[0])
                return data, svc.stats()

        data, stats = asyncio.run(scenario())
        assert len(data) == expected_size
        assert stats["counters"]["serve.retries"] >= 1
        assert stats["counters"]["serve.completed"] == 1

    def test_transient_outage_outlasting_retries_surfaces(self):
        archive, names = small_archive()
        archive.devices.interrupt(range(len(archive.devices)))
        config = ServeConfig(
            batch_window=0.0,
            retry=RetryPolicy(max_attempts=1, sleep=lambda _d: None),
        )

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                await svc.submit(names[0])

        with pytest.raises(TransientUnavailableError):
            asyncio.run(scenario())

    def test_no_retry_policy_fails_fast_on_transients(self):
        archive, names = small_archive()
        archive.devices.interrupt(range(len(archive.devices)))

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                await svc.submit(names[0])

        with pytest.raises(TransientUnavailableError):
            asyncio.run(scenario())

    def test_permanent_loss_raises_data_loss(self):
        archive, names = small_archive()
        archive.devices.fail(range(len(archive.devices)))

        async def scenario():
            async with ReconstructionService(archive, UNBATCHED) as svc:
                with pytest.raises(DataLossError):
                    await svc.submit(names[0])
                return svc.stats()

        stats = asyncio.run(scenario())
        assert stats["counters"]["serve.plan_failures"] == 1

    def test_one_lost_object_does_not_fail_the_batch(self):
        archive, names = small_archive()
        clock = FakeClock()
        config = ServeConfig(batch_window=60.0)
        expected = archive.get(names[1])

        async def scenario():
            svc = ReconstructionService(archive, config, clock=clock)
            await svc.start()
            bad = svc.try_submit("no-such-object")
            good = svc.try_submit(names[1])
            await svc.drain()
            with pytest.raises(KeyError):
                bad.result()
            result = good.result()
            await svc.close()
            return result

        assert asyncio.run(scenario()) == expected


class TestWorkerPool:
    def test_pooled_decode_matches_inline(self):
        archive, names = small_archive(severity=3)
        expected = {name: archive.get(name) for name in names}
        config = ServeConfig(batch_window=0.0, workers=1)

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                return {n: await svc.submit(n) for n in names}

        assert asyncio.run(scenario()) == expected

    def test_worker_crash_degrades_instead_of_failing(self):
        archive, names = small_archive()
        expected = archive.get(names[0])
        config = ServeConfig(
            batch_window=0.0, workers=1, worker_retries=2
        )

        async def scenario():
            async with ReconstructionService(archive, config) as svc:
                first = await svc.submit(names[0])
                svc.inject_worker_crash()
                second = await svc.submit(names[0])
                return first, second, svc.stats()

        first, second, stats = asyncio.run(scenario())
        assert first == expected
        assert second == expected
        assert stats["counters"]["serve.worker_crashes"] >= 1
        assert stats["counters"]["serve.completed"] == 2

    def test_crash_injection_requires_a_pool(self):
        archive, _ = small_archive()
        svc = ReconstructionService(archive, UNBATCHED)
        with pytest.raises(ValueError):
            svc.inject_worker_crash()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_limit": 0},
            {"batch_window": -0.001},
            {"max_batch": 0},
            {"workers": -1},
            {"worker_retries": -1},
            {"plan_capacity": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)
