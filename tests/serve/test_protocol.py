"""Wire-protocol tests: round-trips, malformed frames, v0 compat."""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol as proto
from repro.serve.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    AckResponse,
    BlockDataResponse,
    BlockDeleteRequest,
    BlockFetchRequest,
    BlockGetRequest,
    BlockListRequest,
    BlockMapResponse,
    BlockPutRequest,
    ClusterGetRequest,
    ClusterJoinRequest,
    ClusterLeaveRequest,
    ClusterMetricsRequest,
    ClusterPutRequest,
    ClusterRepairRequest,
    ClusterRepairStatusRequest,
    ClusterSnapshotRequest,
    ClusterStatusRequest,
    ErrorResponse,
    FetchStripeRequest,
    GetRequest,
    KeyListResponse,
    MetricsRequest,
    MetricsResponse,
    MetricsSnapshotResponse,
    NodeAdminRequest,
    NodeStatsRequest,
    ObjectInfoResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    RemoteError,
    SitesGetRequest,
    SitesMetricsRequest,
    SitesPutRequest,
    SitesRepairRequest,
    SitesStatusRequest,
    StatsRequest,
    StatsResponse,
    StatusResponse,
    StripeBlocksResponse,
    encode_request,
    error_code,
    exception_for,
    parse_request,
    parse_response,
)
from repro.storage.archive import DataLossError
from repro.storage.device import TransientUnavailableError

# JSON-safe building blocks.
names = st.text(min_size=1, max_size=40)
keys = st.text(min_size=1, max_size=60)
payloads = st.binary(max_size=512)
json_dicts = st.dictionaries(
    st.text(max_size=20),
    st.one_of(st.integers(), st.text(max_size=20), st.booleans()),
    max_size=5,
)

# One strategy per request type — every op is covered (the coverage
# tests below compare these sets against the registries).
COVERED_REQUESTS = {
    PingRequest,
    StatsRequest,
    MetricsRequest,
    ClusterMetricsRequest,
    SitesMetricsRequest,
    GetRequest,
    BlockPutRequest,
    BlockGetRequest,
    BlockFetchRequest,
    BlockDeleteRequest,
    BlockListRequest,
    NodeStatsRequest,
    NodeAdminRequest,
    ClusterPutRequest,
    ClusterGetRequest,
    ClusterStatusRequest,
    ClusterRepairRequest,
    ClusterRepairStatusRequest,
    ClusterSnapshotRequest,
    ClusterJoinRequest,
    ClusterLeaveRequest,
    FetchStripeRequest,
    SitesPutRequest,
    SitesGetRequest,
    SitesStatusRequest,
    SitesRepairRequest,
}
COVERED_RESPONSES = {
    PongResponse,
    StatsResponse,
    MetricsResponse,
    MetricsSnapshotResponse,
    ObjectInfoResponse,
    BlockDataResponse,
    BlockMapResponse,
    KeyListResponse,
    AckResponse,
    StatusResponse,
    StripeBlocksResponse,
    ErrorResponse,
}
request_strategies = st.one_of(
    st.just(PingRequest()),
    st.just(StatsRequest()),
    st.just(MetricsRequest()),
    st.just(ClusterMetricsRequest()),
    st.just(SitesMetricsRequest()),
    st.builds(
        GetRequest,
        name=names,
        deadline=st.one_of(
            st.none(),
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
        ),
    ),
    st.builds(BlockPutRequest, key=keys, data=payloads),
    st.builds(BlockGetRequest, key=keys),
    st.builds(
        BlockFetchRequest,
        keys=st.lists(keys, max_size=8).map(tuple),
    ),
    st.builds(BlockDeleteRequest, key=keys),
    st.builds(BlockListRequest, prefix=st.text(max_size=20)),
    st.just(NodeStatsRequest()),
    st.builds(
        NodeAdminRequest,
        action=st.sampled_from(NodeAdminRequest._ACTIONS),
        delay_seconds=st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
    ),
    st.builds(ClusterPutRequest, name=names, payload=payloads),
    st.builds(
        ClusterGetRequest, name=names, want_payload=st.booleans()
    ),
    st.just(ClusterStatusRequest()),
    st.builds(
        ClusterRepairRequest,
        mode=st.sampled_from(ClusterRepairRequest._MODES),
    ),
    st.just(ClusterRepairStatusRequest()),
    st.just(ClusterSnapshotRequest()),
    st.builds(
        ClusterJoinRequest,
        node_id=names,
        host=names,
        port=st.integers(min_value=1, max_value=65535),
    ),
    st.builds(ClusterLeaveRequest, node_id=names),
    st.builds(
        FetchStripeRequest,
        name=names,
        seq=st.integers(min_value=0, max_value=2**20),
    ),
    st.builds(SitesPutRequest, name=names, payload=payloads),
    st.builds(SitesGetRequest, name=names, want_payload=st.booleans()),
    st.just(SitesStatusRequest()),
    st.builds(
        SitesRepairRequest,
        mode=st.sampled_from(SitesRepairRequest._MODES),
    ),
)

# One strategy per response type likewise.
response_strategies = st.one_of(
    st.just(PongResponse()),
    st.builds(StatsResponse, stats=json_dicts),
    st.builds(MetricsResponse, metrics=st.text(max_size=100)),
    st.builds(
        MetricsSnapshotResponse,
        role=st.sampled_from(["coordinator", "node", "gateway"]),
        source=names,
        snapshot=json_dicts,
    ),
    st.builds(
        ObjectInfoResponse,
        name=names,
        size=st.integers(min_value=0, max_value=2**40),
        sha256=st.text(max_size=64),
        payload=st.one_of(st.none(), payloads),
    ),
    st.builds(BlockDataResponse, key=keys, data=payloads),
    st.builds(
        BlockMapResponse,
        blocks=st.dictionaries(keys, payloads, max_size=6),
        missing=st.lists(keys, max_size=4).map(tuple),
    ),
    st.builds(
        KeyListResponse, keys=st.lists(keys, max_size=8).map(tuple)
    ),
    st.builds(AckResponse, info=json_dicts),
    st.builds(StatusResponse, status=json_dicts),
    st.builds(
        StripeBlocksResponse,
        name=names,
        seq=st.integers(min_value=0, max_value=2**20),
        payload_length=st.integers(min_value=0, max_value=2**30),
        blocks=st.dictionaries(
            st.integers(min_value=0, max_value=95).map(str),
            payloads,
            max_size=6,
        ),
    ),
    st.builds(
        ErrorResponse,
        code=st.sampled_from(
            ["overloaded", "deadline", "not_found", "internal"]
        ),
        error=st.text(min_size=1, max_size=30),
        message=st.text(max_size=80),
    ),
)

request_ids = st.one_of(
    st.none(), st.integers(min_value=0, max_value=2**31), names
)


class TestRequestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(request=request_strategies, request_id=request_ids)
    def test_every_request_type_round_trips(self, request, request_id):
        line = encode_request(request, request_id=request_id)
        parsed, envelope = parse_request(line)
        assert parsed == request
        assert type(parsed) is type(request)
        assert envelope.v == PROTOCOL_VERSION
        assert envelope.id == request_id

    @settings(max_examples=50, deadline=None)
    @given(request=request_strategies)
    def test_trace_context_rides_the_envelope(self, request):
        trace = {"trace_id": "abc123", "span_id": "def456"}
        line = encode_request(request, trace=trace)
        _, envelope = parse_request(line)
        assert envelope.trace == trace

    def test_all_registered_ops_covered_by_strategy(self):
        # If a new request type lands without a strategy above, fail
        # loudly instead of silently losing property coverage.
        assert COVERED_REQUESTS == set(proto._REQUEST_TYPES.values())


class TestResponseRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(response=response_strategies)
    def test_every_response_type_round_trips(self, response):
        line = proto.encode_frame(response.to_frame())
        parsed, frame = parse_response(line)
        assert parsed == response
        assert type(parsed) is type(response)
        assert frame["v"] == PROTOCOL_VERSION

    def test_all_registered_kinds_covered_by_strategy(self):
        assert COVERED_RESPONSES == set(proto._RESPONSE_TYPES.values())

    def test_unknown_kind_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_response(b'{"ok": true, "kind": "wat"}')


class TestMalformedFrames:
    def check(self, line, code="bad_request"):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code
        return excinfo.value

    def test_invalid_json(self):
        self.check(b"{nope")

    def test_non_object_frame(self):
        self.check(b"[1, 2, 3]")

    def test_missing_op(self):
        self.check(b'{"v": 1}', code="unknown_op")

    def test_unknown_op(self):
        exc = self.check(
            b'{"v": 1, "op": "explode", "id": 7}', code="unknown_op"
        )
        # The reply can still be correlated and versioned.
        assert exc.request_id == 7
        assert exc.v == 1

    def test_unsupported_future_version(self):
        self.check(
            json.dumps({"v": 99, "op": "ping"}).encode(),
            code="unsupported_version",
        )

    def test_bad_version_type(self):
        self.check(b'{"v": "one", "op": "ping"}')
        self.check(b'{"v": -1, "op": "ping"}')
        self.check(b'{"v": true, "op": "ping"}')

    def test_bad_id_type(self):
        self.check(b'{"v": 1, "op": "ping", "id": [1]}')

    def test_bad_trace_shape(self):
        self.check(b'{"v": 1, "op": "ping", "trace": "t1"}')
        self.check(b'{"v": 1, "op": "ping", "trace": {"trace_id": 5}}')

    def test_missing_required_field(self):
        self.check(b'{"v": 1, "op": "get"}')
        self.check(b'{"v": 1, "op": "cluster.leave"}')

    def test_mistyped_field(self):
        self.check(b'{"v": 1, "op": "get", "name": 42}')
        self.check(b'{"v": 1, "op": "block.fetch", "keys": "k"}')

    def test_invalid_base64_payload(self):
        self.check(
            b'{"v": 1, "op": "block.put", "key": "k", "data": "%%%"}'
        )

    def test_bad_admin_action(self):
        self.check(
            b'{"v": 1, "op": "node.admin", "action": "reboot"}'
        )


class TestV0Compat:
    def test_unversioned_frame_parses_as_v0_with_one_warning(self):
        proto._V0_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                _, envelope = parse_request(
                    b'{"op": "get", "name": "object-000"}'
                )
                assert envelope.v == 0
                _, envelope = parse_request(b'{"op": "ping"}')
                assert envelope.v == 0
            deprecations = [
                w
                for w in caught
                if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
        finally:
            proto._V0_WARNED = True

    def test_v0_response_frame_is_exactly_the_legacy_shape(self):
        frame = ObjectInfoResponse(
            name="object-000", size=1024, sha256="ab" * 32
        ).to_frame(v=0)
        assert frame == {
            "ok": True,
            "name": "object-000",
            "size": 1024,
            "sha256": "ab" * 32,
        }

    def test_v0_error_frame_has_no_envelope_keys(self):
        frame = ErrorResponse.from_exception(
            KeyError("no archived object named 'x'")
        ).to_frame(v=0)
        assert "v" not in frame and "kind" not in frame
        assert frame["ok"] is False
        assert frame["error"] == "KeyError"

    def test_v1_frames_carry_the_envelope(self):
        frame = PongResponse().to_frame(v=1, request_id="r1")
        assert frame["v"] == 1
        assert frame["kind"] == "pong"
        assert frame["id"] == "r1"


class TestErrorTaxonomy:
    CASES = [
        (ServiceOverloadedError("q"), "overloaded"),
        (DeadlineExceededError("d"), "deadline"),
        (ServiceClosedError("c"), "closed"),
        (DataLossError("obj", 0, [1, 2]), "data_loss"),
        (TransientUnavailableError("dark"), "unavailable"),
        (KeyError("missing"), "not_found"),
        (ValueError("bad"), "bad_request"),
        (RuntimeError("boom"), "internal"),
        (ProtocolError("x", code="unknown_op"), "unknown_op"),
        (RemoteError("y", code="data_loss"), "data_loss"),
    ]

    @pytest.mark.parametrize(
        "exc,code", CASES, ids=[c for _, c in CASES]
    )
    def test_every_exception_maps_to_a_stable_code(self, exc, code):
        assert error_code(exc) == code

    def test_exception_for_rebuilds_faithful_types(self):
        assert isinstance(
            exception_for("overloaded", "m"), ServiceOverloadedError
        )
        assert isinstance(
            exception_for("deadline", "m"), DeadlineExceededError
        )
        assert isinstance(
            exception_for("closed", "m"), ServiceClosedError
        )
        assert isinstance(exception_for("not_found", "m"), KeyError)
        assert isinstance(
            exception_for("unavailable", "m"),
            TransientUnavailableError,
        )
        remote = exception_for("data_loss", "m")
        assert isinstance(remote, RemoteError)
        assert remote.code == "data_loss"
        assert not remote.retryable
        assert exception_for("overloaded", "m")  # sanity: truthy

    def test_retryable_codes(self):
        assert RemoteError("m", code="overloaded").retryable
        assert RemoteError("m", code="unavailable").retryable
        assert not RemoteError("m", code="internal").retryable

    def test_error_response_raise_remote_round_trip(self):
        response = ErrorResponse.from_exception(
            TransientUnavailableError("node dark")
        )
        with pytest.raises(TransientUnavailableError):
            response.raise_remote()
