"""Paper-scale validation: the expensive cross-checks, run once.

These tests replay the paper's own validation methodology at its real
96-node scale (most of the suite uses 32-node graphs for speed):

* the complete (96 choose 4) = 3,321,960-case enumeration the paper ran
  for its worst-case suite, cross-checked against the branch-and-bound
  inclusion–exclusion counts;
* the mirrored-system simulator-vs-theory agreement at tight tolerance;
* the end-to-end claim behind Table 1: the catalog graph really does
  survive *every* 4-device loss pattern.

Together they justify trusting the fast analysis paths everywhere else.
"""

import numpy as np
import pytest

from repro.core import (
    exhaustive_failing_sets,
    failing_set_counts,
    minimal_bad_stopping_sets,
)
from repro.graphs import mirrored_graph, tornado_catalog_graph
from repro.raid import mirrored_system
from repro.sim import sample_fail_fraction


class TestPaperScale:
    def test_full_k4_enumeration_matches_counts(self, graph3):
        """All 3,321,960 four-loss cases: brute force == exact counts.

        The paper: 'we first tested one prototype graph using every
        (96 choose 4) failure case'.  For the adjusted catalog graph the
        answer must be zero failing cases, agreeing with the
        branch-and-bound analysis.
        """
        brute = exhaustive_failing_sets(graph3, 4)
        counted = failing_set_counts(graph3, max_k=4)
        assert len(brute) == counted[4][0] == 0
        assert counted[4][1] == 3_321_960

    def test_full_k4_enumeration_on_unadjusted_graph(self):
        """Same cross-check on a graph that *does* fail at 4."""
        g = tornado_catalog_graph(1, adjusted=False)
        brute = exhaustive_failing_sets(g, 4)
        minimal = minimal_bad_stopping_sets(g, max_size=4)
        from repro.core import count_failing_sets

        assert len(brute) == count_failing_sets(96, 4, minimal)
        assert 0 < len(brute) < 200  # a handful, like the paper's 2
        # every brute-force failure contains a minimal critical set
        for combo in brute:
            assert any(s <= set(combo) for s in minimal)

    def test_mirror_simulator_nine_digit_regime(self):
        """Exact-path mirrored probabilities at machine precision and a
        large-sample Monte Carlo agreement check (paper §3)."""
        theory = mirrored_system(48).profile()
        g = mirrored_graph(48)
        counts = failing_set_counts(g, max_k=6)
        for k in range(1, 7):
            fails, total = counts[k]
            assert fails / total == pytest.approx(
                theory[k], rel=1e-12
            )
        rng = np.random.default_rng(0)
        est = sample_fail_fraction(g, 12, 60_000, rng)
        assert est == pytest.approx(theory[12], abs=0.008)
