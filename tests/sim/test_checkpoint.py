"""Crash-tolerant sweep tests: checkpoints, resume, timeouts, retries.

The worker-fault drills use the ``REPRO_FAULT_*`` environment hooks in
:mod:`repro.sim.montecarlo` (fork-started pool workers inherit the
patched environment), so crashes and hangs are injected exactly where a
real OOM-kill or firmware stall would land.
"""

import json

import pytest

from repro.obs import MetricsRegistry, capture
from repro.sim import profile_graph

SWEEP = dict(samples_per_k=200, exact_upto=3, seed=7)


@pytest.fixture(scope="module")
def baseline(small_tornado_module):
    return profile_graph(small_tornado_module, **SWEEP)


@pytest.fixture(scope="module")
def small_tornado_module():
    from repro.core import tornado_graph

    return tornado_graph(16, seed=3, min_final_lefts=6)


class TestCheckpointFile:
    def test_header_and_cell_records_written(
        self, small_tornado_module, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        profile_graph(small_tornado_module, **SWEEP, checkpoint=path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["record"] == "header"
        assert records[0]["graph"] == small_tornado_module.name
        assert records[0]["seed"] == 7
        cells = [r for r in records if r["record"] == "cell"]
        assert len(cells) == len(records) - 1 > 0
        assert all(r["samples"] == 200 for r in cells)

    def test_fresh_run_truncates_stale_checkpoint(
        self, small_tornado_module, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"record": "cell", "k": 9, "frac": 0.99}\n')
        profile_graph(small_tornado_module, **SWEEP, checkpoint=path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["record"] == "header"  # old content gone


class TestResume:
    def test_resume_after_worker_crash_is_byte_identical(
        self, small_tornado_module, tmp_path, baseline, monkeypatch
    ):
        """Kill the worker for one k-cell mid-sweep; the resumed sweep
        must reproduce the uninterrupted profile byte-for-byte."""
        path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_FAULT_CRASH_K", "10")
        partial = profile_graph(
            small_tornado_module,
            **SWEEP,
            n_jobs=2,
            checkpoint=path,
            max_retries=1,
        )
        monkeypatch.delenv("REPRO_FAULT_CRASH_K")
        assert not partial.fully_covered
        assert 10 in partial.uncovered_ks()

        resumed = profile_graph(
            small_tornado_module,
            **SWEEP,
            n_jobs=2,
            checkpoint=path,
            resume=True,
        )
        assert resumed.fully_covered
        assert resumed.to_json() == baseline.to_json()

    def test_serial_resume_is_byte_identical(
        self, small_tornado_module, tmp_path, baseline
    ):
        path = tmp_path / "sweep.jsonl"
        profile_graph(small_tornado_module, **SWEEP, checkpoint=path)
        resumed = profile_graph(
            small_tornado_module, **SWEEP, checkpoint=path, resume=True
        )
        assert resumed.to_json() == baseline.to_json()

    def test_resume_tolerates_torn_final_line(
        self, small_tornado_module, tmp_path, baseline
    ):
        path = tmp_path / "sweep.jsonl"
        profile_graph(small_tornado_module, **SWEEP, checkpoint=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record": "cell", "k": 1')  # torn write
        resumed = profile_graph(
            small_tornado_module, **SWEEP, checkpoint=path, resume=True
        )
        assert resumed.to_json() == baseline.to_json()

    def test_mismatched_checkpoint_rejected(
        self, small_tornado_module, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        profile_graph(small_tornado_module, **SWEEP, checkpoint=path)
        with pytest.raises(ValueError, match="different sweep"):
            profile_graph(
                small_tornado_module,
                samples_per_k=999,
                exact_upto=3,
                seed=7,
                checkpoint=path,
                resume=True,
            )


class TestDegradedCoverage:
    def test_hung_worker_times_out_into_coverage_mask(
        self, small_tornado_module, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_HANG_K", "12")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECS", "3")
        profile = profile_graph(
            small_tornado_module,
            **SWEEP,
            n_jobs=2,
            cell_timeout=0.75,
            max_retries=0,
        )
        assert profile.uncovered_ks() == [12]
        # the abandoned cell is interpolated, not left at zero
        assert (
            profile.fail_fraction[11]
            <= profile.fail_fraction[12]
            <= profile.fail_fraction[13]
        )

    def test_crashed_cell_neighbours_still_complete(
        self, small_tornado_module, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_CRASH_K", "10")
        profile = profile_graph(
            small_tornado_module,
            **SWEEP,
            n_jobs=2,
            max_retries=0,
        )
        assert profile.uncovered_ks() == [10]
        assert profile.samples[11] == 200  # innocent cells unharmed


class TestWorkerMetricsMerge:
    def test_parallel_decoder_counters_reach_parent(
        self, small_tornado_module
    ):
        with capture(MetricsRegistry()) as reg:
            profile_graph(small_tornado_module, **SWEEP, n_jobs=2)
        counters = reg.snapshot()["counters"]
        decoder = {
            k: v for k, v in counters.items() if k.startswith("decoder.")
        }
        assert decoder, "worker decoder.* counters were not merged"
        assert counters.get("decoder.cases", 0) > 0

    def test_parallel_matches_serial_counters(self, small_tornado_module):
        with capture(MetricsRegistry()) as serial_reg:
            profile_graph(small_tornado_module, **SWEEP)
        with capture(MetricsRegistry()) as parallel_reg:
            profile_graph(small_tornado_module, **SWEEP, n_jobs=2)
        serial = serial_reg.snapshot()["counters"]
        parallel = parallel_reg.snapshot()["counters"]
        assert serial["decoder.cases"] == parallel["decoder.cases"]
