"""Engines are interchangeable: byte-identical results at the same seed.

The acceptance bar for the bitset engine is not "statistically close" —
both batch engines consume the exact same RNG stream (the packed mask
generator replays ``_random_loss_masks``'s draws), so every profile,
overhead curve, and checkpoint must match byte for byte.
"""

from __future__ import annotations

import numpy as np

from repro.core import tornado_graph
from repro.federation import FederatedSystem
from repro.federation.profile import federated_profile
from repro.sim import measure_retrieval_overhead, profile_graph
from repro.sim.montecarlo import sample_fail_fraction


class TestProfileByteIdentical:
    def test_failure_profile_identical_across_engines(self, small_tornado):
        sweep = dict(samples_per_k=600, exact_upto=3, seed=7)
        p_bit = profile_graph(small_tornado, **sweep, engine="bitset")
        p_mat = profile_graph(small_tornado, **sweep, engine="matmul")
        p_sp = profile_graph(small_tornado, **sweep, engine="sparse")
        assert p_bit.to_json() == p_mat.to_json()
        assert p_bit.to_json() == p_sp.to_json()

    def test_sparse_k_grid_identical(self, small_tornado):
        sweep = dict(samples_per_k=500, exact_upto=2, seed=3, ks=[6, 10, 14])
        p_bit = profile_graph(small_tornado, **sweep, engine="bitset")
        p_mat = profile_graph(small_tornado, **sweep, engine="matmul")
        p_sp = profile_graph(small_tornado, **sweep, engine="sparse")
        assert p_bit.to_json() == p_mat.to_json()
        assert p_bit.to_json() == p_sp.to_json()

    def test_sample_fail_fraction_identical(self, small_tornado):
        for k in (4, 9, 20):
            f_bit = sample_fail_fraction(
                small_tornado, k, 3000, rng=11, engine="bitset"
            )
            f_mat = sample_fail_fraction(
                small_tornado, k, 3000, rng=11, engine="matmul"
            )
            f_sp = sample_fail_fraction(
                small_tornado, k, 3000, rng=11, engine="sparse"
            )
            assert f_bit == f_mat == f_sp

    def test_checkpoint_resumes_across_engines(self, small_tornado, tmp_path):
        """A sweep checkpointed under one engine resumes under the other."""
        sweep = dict(samples_per_k=400, exact_upto=3, seed=5)
        baseline = profile_graph(small_tornado, **sweep, engine="matmul")
        ckpt = tmp_path / "sweep.jsonl"
        ks_all = list(
            range(4, small_tornado.num_nodes)
        )
        first = profile_graph(
            small_tornado,
            **sweep,
            ks=ks_all[: len(ks_all) // 2],
            checkpoint=ckpt,
            engine="matmul",
        )
        assert first is not None
        resumed = profile_graph(
            small_tornado,
            **sweep,
            checkpoint=ckpt,
            resume=True,
            engine="bitset",
        )
        assert resumed.to_json() == baseline.to_json()

    def test_sparse_resumes_bitset_checkpoint(self, small_tornado, tmp_path):
        """Sparse picks up a bitset checkpoint byte-identically."""
        sweep = dict(samples_per_k=400, exact_upto=3, seed=5)
        baseline = profile_graph(small_tornado, **sweep, engine="bitset")
        ckpt = tmp_path / "sweep.jsonl"
        ks_all = list(range(4, small_tornado.num_nodes))
        profile_graph(
            small_tornado,
            **sweep,
            ks=ks_all[: len(ks_all) // 2],
            checkpoint=ckpt,
            engine="bitset",
        )
        ckpt_after_bitset = ckpt.read_bytes()
        resumed = profile_graph(
            small_tornado,
            **sweep,
            checkpoint=ckpt,
            resume=True,
            engine="sparse",
        )
        assert resumed.to_json() == baseline.to_json()
        # The resumed run appended the remaining cells to the same
        # file, preserving every bitset-era byte.
        assert ckpt.read_bytes().startswith(ckpt_after_bitset)


class TestOverheadIdentical:
    def test_all_engines_identical_downloads(self, small_tornado):
        results = {
            engine: measure_retrieval_overhead(
                small_tornado, n_trials=250, seed=13, engine=engine
            )
            for engine in ("scalar", "bitset", "matmul", "sparse")
        }
        base = results["scalar"].downloads
        assert np.array_equal(base, results["bitset"].downloads)
        assert np.array_equal(base, results["matmul"].downloads)
        assert np.array_equal(base, results["sparse"].downloads)

    def test_batched_floor_and_ceiling(self, small_tornado):
        res = measure_retrieval_overhead(
            small_tornado, n_trials=100, seed=1, engine="bitset"
        )
        assert (res.downloads >= small_tornado.num_data).all()
        assert (res.downloads <= small_tornado.num_nodes).all()


class TestFederatedIdentical:
    def test_federated_profile_identical(self):
        graph = tornado_graph(8, seed=1, min_final_lefts=4)
        system = FederatedSystem([graph, graph])
        kwargs = dict(samples_per_k=400, seed=5)
        f_bit = federated_profile(system, **kwargs, engine="bitset")
        f_mat = federated_profile(system, **kwargs, engine="matmul")
        f_sp = federated_profile(system, **kwargs, engine="sparse")
        assert f_bit.to_json() == f_mat.to_json()
        assert f_bit.to_json() == f_sp.to_json()
