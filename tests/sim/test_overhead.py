"""Tests for incremental-retrieval overhead measurement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tornado_graph
from repro.graphs import mirrored_graph, striped_graph
from repro.sim import IncrementalPeeler, measure_retrieval_overhead


class TestIncrementalPeeler:
    def test_all_arrivals_complete(self, tiny_graph):
        peeler = IncrementalPeeler(tiny_graph)
        for node in range(6):
            peeler.arrive(node)
        assert peeler.complete

    def test_data_arrivals_alone_complete(self, tiny_graph):
        peeler = IncrementalPeeler(tiny_graph)
        for node in (0, 1, 2):
            peeler.arrive(node)
        assert peeler.complete

    def test_checks_propagate_to_data(self, tiny_graph):
        # checks 3 (=0^1), 4 (=1^2), 5 (=0^1^2) plus data 1:
        # 3 gives 0; 4 gives 2 => complete without receiving 0,2.
        peeler = IncrementalPeeler(tiny_graph)
        peeler.arrive(3)
        peeler.arrive(4)
        assert not peeler.complete
        peeler.arrive(1)
        assert peeler.complete

    def test_duplicate_arrival_gains_nothing(self, tiny_graph):
        peeler = IncrementalPeeler(tiny_graph)
        assert peeler.arrive(0) == 1
        assert peeler.arrive(0) == 0

    def test_reset(self, tiny_graph):
        peeler = IncrementalPeeler(tiny_graph)
        for node in (0, 1, 2):
            peeler.arrive(node)
        peeler.reset()
        assert not peeler.complete
        assert peeler.data_known == 0

    def test_arrival_gain_counts_cascade(self, tiny_graph):
        peeler = IncrementalPeeler(tiny_graph)
        peeler.arrive(3)  # 0^1
        peeler.arrive(5)  # 0^1^2
        # arriving 0 unlocks 1 (via 3), then 2 (via 5), and finally the
        # never-received check 4 (= 1^2) is recomputable: gain 4.
        assert peeler.arrive(0) == 4
        assert peeler.complete


class TestMeasureOverhead:
    def test_mirror_needs_one_per_pair(self):
        g = mirrored_graph(8)
        result = measure_retrieval_overhead(
            g, n_trials=500, seed=np.random.default_rng(0)
        )
        # Coupon-collector-like: needs one of each pair; overhead > 1.
        assert result.mean_overhead > 1.0
        assert result.downloads.min() >= 8

    def test_striped_needs_everything(self):
        g = striped_graph(8)
        result = measure_retrieval_overhead(
            g, n_trials=100, seed=np.random.default_rng(0)
        )
        assert (result.downloads == 8).all()
        assert result.mean_overhead == pytest.approx(1.0)

    def test_catalog_overhead_band(self, graph3):
        result = measure_retrieval_overhead(
            graph3, n_trials=1500, seed=np.random.default_rng(0)
        )
        # Paper Table 6 regime: ~1.25-1.33
        assert 1.2 <= result.mean_overhead <= 1.4

    def test_ml_floor_below_peeling(self, graph3):
        peel = measure_retrieval_overhead(
            graph3,
            n_trials=200,
            seed=np.random.default_rng(0),
            decoder="peeling",
        )
        ml = measure_retrieval_overhead(
            graph3,
            n_trials=200,
            seed=np.random.default_rng(0),
            decoder="ml",
        )
        assert ml.mean_overhead <= peel.mean_overhead
        assert ml.downloads.min() >= graph3.num_data  # info-theoretic floor

    def test_rejects_unknown_decoder(self, graph3):
        with pytest.raises(ValueError):
            measure_retrieval_overhead(graph3, decoder="magic")

    def test_histogram_and_percentile(self, small_tornado):
        result = measure_retrieval_overhead(
            small_tornado, n_trials=300, seed=np.random.default_rng(1)
        )
        hist = result.histogram()
        assert sum(hist.values()) == 300
        assert result.percentile(50) <= result.percentile(95)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300))
def test_incremental_matches_batch_decoder(seed):
    """Prefix decodability from the incremental peeler must agree with
    the one-shot decoder on the complement."""
    from repro.core import PeelingDecoder

    g = tornado_graph(16, seed=seed % 5)
    rng = np.random.default_rng(seed)
    order = rng.permutation(g.num_nodes)
    peeler = IncrementalPeeler(g)
    dec = PeelingDecoder(g)
    seen: set[int] = set()
    for node in order:
        peeler.arrive(int(node))
        seen.add(int(node))
        missing = [n for n in range(g.num_nodes) if n not in seen]
        assert peeler.complete == dec.is_recoverable(missing)
        if peeler.complete:
            break
