"""Shared-memory handoff: bundles, parallel identity, leak guards.

The zero-pickle path must be invisible in the numbers (bit-identical
estimates at any worker count) and invisible in ``/dev/shm`` (no
orphaned segments, even when a worker is SIGKILLed mid-sweep).
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import tornado_csr_graph, tornado_graph
from repro.sim.montecarlo import (
    _ShmGraphRef,
    _publish_graph,
    profile_graph,
    sample_fail_fraction,
)
from repro.sim.shm import SHM_PREFIX, SharedArrayBundle

DEV_SHM = Path("/dev/shm")


def _our_segments() -> list[str]:
    if not DEV_SHM.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return [p.name for p in DEV_SHM.iterdir() if SHM_PREFIX in p.name]


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this file must leave /dev/shm as it found it."""
    before = set(_our_segments())
    yield
    leaked = set(_our_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestSharedArrayBundle:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(100, dtype=np.intp),
            "b": np.random.default_rng(0).random((7, 9)),
            "c": np.array([], dtype=np.uint64),
        }
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(bundle.descriptor)
            try:
                for key, arr in arrays.items():
                    assert np.array_equal(attached[key], arr), key
                # Attached views are read-only.
                with pytest.raises(ValueError):
                    attached["a"][0] = 1
            finally:
                attached.close()

    def test_owner_unlinks_on_close(self):
        bundle = SharedArrayBundle.create(
            {"x": np.zeros(10, dtype=np.uint64)}
        )
        name = bundle.descriptor[0]
        assert name in _our_segments()
        bundle.close()
        assert name not in _our_segments()
        bundle.close()  # idempotent

    def test_attach_close_does_not_unlink(self):
        with SharedArrayBundle.create(
            {"x": np.ones(4, dtype=np.float64)}
        ) as bundle:
            attached = SharedArrayBundle.attach(bundle.descriptor)
            attached.close()
            # The segment survives a non-owner close.
            again = SharedArrayBundle.attach(bundle.descriptor)
            assert again["x"].sum() == 4.0
            again.close()

    def test_descriptor_is_tiny_and_picklable(self):
        import pickle

        with SharedArrayBundle.create(
            {"big": np.zeros((1 << 12, 16), dtype=np.uint64)}
        ) as bundle:
            blob = pickle.dumps(bundle.descriptor)
            assert len(blob) < 512  # descriptors, not data, get pickled


class TestParallelIdentity:
    def test_sample_fail_fraction_njobs_identity(self, small_tornado):
        """Serial and shm-parallel estimates match exactly, per engine."""
        for engine in ("bitset", "sparse"):
            serial = sample_fail_fraction(
                small_tornado, 9, 4000, rng=3, engine=engine
            )
            par = sample_fail_fraction(
                small_tornado, 9, 4000, rng=3, engine=engine, n_jobs=2
            )
            assert serial == par, engine

    def test_profile_graph_shm_identity(self):
        """Sparse parallel sweep (CSR via shm) matches the serial sweep."""
        graph = tornado_csr_graph(1 << 8, seed=6)
        kwargs = dict(
            samples_per_k=800, ks=[12, 40, 90], seed=11, engine="sparse"
        )
        serial = profile_graph(graph, **kwargs)
        parallel = profile_graph(graph, **kwargs, n_jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_matmul_falls_back_to_serial(self, small_tornado):
        """Non-packed engines ignore n_jobs rather than failing."""
        serial = sample_fail_fraction(
            small_tornado, 9, 1000, rng=3, engine="matmul"
        )
        par = sample_fail_fraction(
            small_tornado, 9, 1000, rng=3, engine="matmul", n_jobs=2
        )
        assert serial == par


class TestCrashSafety:
    def test_sigkilled_worker_leaves_no_segments(self):
        """SIGKILL a sweep worker mid-run: no orphaned /dev/shm entries.

        Workers never own segments, so the only cleanup that matters is
        the parent's — which must also survive the BrokenProcessPool
        the kill provokes.  REPRO_FAULT_CRASH_K makes the worker for
        one k-cell call os._exit (same observable effect as SIGKILL:
        no atexit, no finally) while other cells proceed.
        """
        graph = tornado_graph(16, seed=3, min_final_lefts=6)
        os.environ["REPRO_FAULT_CRASH_K"] = "9"
        try:
            profile = profile_graph(
                graph,
                samples_per_k=300,
                ks=[7, 9, 12],
                seed=2,
                engine="sparse",
                n_jobs=2,
                cell_timeout=60.0,
                max_retries=0,
            )
        finally:
            os.environ.pop("REPRO_FAULT_CRASH_K", None)
        # The crashed cell is excluded, the sweep still completed.
        assert not profile.coverage[9]
        assert profile.coverage[7] and profile.coverage[12]

    def test_sigkill_during_mask_decode(self, small_tornado):
        """Kill a mask-decode worker outright; parent still cleans up."""
        from concurrent.futures.process import BrokenProcessPool

        ref, bundle = _publish_graph(small_tornado)
        assert isinstance(ref, _ShmGraphRef)
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=1)
            fut = pool.submit(time.sleep, 30)
            # Give the pool a beat to spawn its worker, then kill it.
            deadline = time.time() + 10
            while not pool._processes and time.time() < deadline:
                time.sleep(0.05)
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(BrokenProcessPool):
                fut.result(timeout=30)
            pool.shutdown(wait=False, cancel_futures=True)
        finally:
            bundle.close()
        # The autouse fixture asserts no segments leaked.
