"""Tests for the worst-case search driver."""

from repro.core import tornado_graph
from repro.graphs import mirrored_graph
from repro.sim import verify_exhaustive, worst_case_search


class TestWorstCaseSearch:
    def test_catalog_result_fields(self, graph3):
        result = worst_case_search(graph3, max_k=5)
        assert result.first_failure == 5
        assert result.graph_name == graph3.name
        assert result.search_seconds > 0
        assert set(result.failing_counts) == {1, 2, 3, 4, 5}

    def test_exhaustive_verification_passes(self):
        g = tornado_graph(16, seed=2)
        result = worst_case_search(g, max_k=3, verify_upto=3)
        assert result.verified_upto == 3

    def test_describe_format(self, graph3):
        result = worst_case_search(graph3, max_k=5)
        text = result.describe()
        assert "first failure = 5" in text
        assert "k=5" in text

    def test_mirror_first_failure(self):
        result = worst_case_search(mirrored_graph(8), max_k=3)
        assert result.first_failure == 2

    def test_verify_exhaustive_function(self):
        g = tornado_graph(16, seed=5)
        assert verify_exhaustive(g, 2)
        assert verify_exhaustive(g, 3)
