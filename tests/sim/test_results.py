"""Tests for failure-profile metrics."""

import numpy as np
import pytest

from repro.raid import mirrored_system
from repro.sim import FailureProfile


def make_profile(fail, num_data=4, name="toy"):
    fail = np.asarray(fail, dtype=float)
    return FailureProfile(
        system_name=name,
        num_devices=len(fail) - 1,
        num_data=num_data,
        fail_fraction=fail,
        samples=np.zeros(len(fail), dtype=np.int64),
    )


class TestValidation:
    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            FailureProfile(
                system_name="x",
                num_devices=4,
                num_data=2,
                fail_fraction=np.zeros(4),
                samples=np.zeros(4, dtype=np.int64),
            )

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValueError):
            make_profile([0, 0.5, 1.5, 1, 1, 1, 1, 1, 1])


class TestMetrics:
    def test_first_failure(self):
        p = make_profile([0, 0, 0.25, 1, 1, 1, 1, 1, 1])
        assert p.first_failure() == 2

    def test_first_failure_none(self):
        p = make_profile([0] * 8 + [1])
        assert p.first_failure() == 8

    def test_success_by_online_monotone(self):
        # Noisy profile: success curve must still be non-decreasing.
        p = make_profile([0, 0.1, 0.05, 0.5, 0.4, 1, 1, 1, 1])
        s = p.success_by_online()
        assert (np.diff(s) >= 0).all()
        assert s[-1] == 1.0

    def test_average_threshold_step_profile(self):
        # Fails iff more than 2 of 8 devices offline: threshold = 6.
        fail = [0, 0, 0, 1, 1, 1, 1, 1, 1]
        p = make_profile(fail)
        assert p.average_nodes_to_reconstruct() == pytest.approx(6.0)
        assert p.average_overhead() == pytest.approx(1.5)

    def test_nodes_for_probability_step(self):
        fail = [0, 0, 0, 1, 1, 1, 1, 1, 1]
        p = make_profile(fail)
        assert p.nodes_for_success_probability(0.5) == 6
        assert p.nodes_for_success_probability(1.0) == 6
        assert p.overhead_at_probability() == pytest.approx(1.5)

    def test_rejects_bad_probability(self):
        p = make_profile([0] * 8 + [1])
        with pytest.raises(ValueError):
            p.nodes_for_success_probability(0.0)

    def test_average_nodes_capable_all_success(self):
        """With success everywhere, it's the weighted mean of online."""
        n = 96
        fail = np.zeros(n + 1)
        fail[-1] = 1.0
        p = FailureProfile(
            system_name="x",
            num_devices=n,
            num_data=48,
            fail_fraction=fail,
            samples=np.zeros(n + 1, dtype=np.int64),
        )
        ks = np.arange(5, 49)
        w = np.linspace(10, 34, len(ks))
        expect = np.dot(w, 96 - ks) / w.sum()
        assert p.average_nodes_capable() == pytest.approx(expect)

    def test_average_nodes_capable_no_success_returns_n(self):
        n = 96
        fail = np.ones(n + 1)
        fail[0] = 0.0
        p = FailureProfile(
            system_name="x",
            num_devices=n,
            num_data=48,
            fail_fraction=fail,
            samples=np.zeros(n + 1, dtype=np.int64),
        )
        assert p.average_nodes_capable() == 96.0

    def test_mirrored_capable_between_extremes(self):
        p = FailureProfile.from_analytic(mirrored_system(48))
        val = p.average_nodes_capable()
        assert 75 <= val <= 92  # paper-era mirrored values sit high


class TestPersistence:
    def test_json_roundtrip(self):
        p = make_profile([0, 0, 0.25, 1, 1, 1, 1, 1, 1])
        p2 = FailureProfile.from_json(p.to_json())
        np.testing.assert_array_equal(p2.fail_fraction, p.fail_fraction)
        assert p2.system_name == p.system_name
        assert p2.num_data == p.num_data

    def test_file_roundtrip(self, tmp_path):
        p = make_profile([0, 0, 0.25, 1, 1, 1, 1, 1, 1])
        path = tmp_path / "prof.json"
        p.save(path)
        p2 = FailureProfile.load(path)
        np.testing.assert_array_equal(p2.fail_fraction, p.fail_fraction)

    def test_with_exact_head(self):
        p = make_profile([0, 0.5, 0.5, 1, 1, 1, 1, 1, 1])
        p2 = p.with_exact_head({1: 0.0, 2: 0.125})
        assert p2.fail_fraction[1] == 0.0
        assert p2.fail_fraction[2] == 0.125
        assert p2.samples[1] == 0
        # original untouched
        assert p.fail_fraction[1] == 0.5

    def test_from_analytic(self):
        sys = mirrored_system(4)
        p = FailureProfile.from_analytic(sys)
        assert p.num_devices == 8
        assert p.first_failure() == 2
        assert (p.samples == 0).all()


class TestConfidenceInterval:
    def test_exact_entry_zero_width(self):
        p = make_profile([0, 0, 0.25, 1, 1, 1, 1, 1, 1])
        lo, hi = p.confidence_interval(2)
        assert lo == hi == 0.25

    def test_sampled_entry_brackets_estimate(self):
        import numpy as np

        prof = FailureProfile(
            system_name="x",
            num_devices=8,
            num_data=4,
            fail_fraction=np.array([0, 0, 0.3, 1, 1, 1, 1, 1, 1.0]),
            samples=np.array([0, 0, 1000, 0, 0, 0, 0, 0, 0]),
        )
        lo, hi = prof.confidence_interval(2)
        assert lo < 0.3 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_width_shrinks_with_samples(self):
        import numpy as np

        def width(n):
            prof = FailureProfile(
                system_name="x",
                num_devices=8,
                num_data=4,
                fail_fraction=np.array([0, 0, 0.3, 1, 1, 1, 1, 1, 1.0]),
                samples=np.array([0, 0, n, 0, 0, 0, 0, 0, 0]),
            )
            lo, hi = prof.confidence_interval(2)
            return hi - lo

        assert width(10_000) < width(100)

    def test_extreme_fractions_stay_in_bounds(self):
        import numpy as np

        prof = FailureProfile(
            system_name="x",
            num_devices=8,
            num_data=4,
            fail_fraction=np.array([0, 0, 0.0, 1, 1, 1, 1, 1, 1.0]),
            samples=np.array([0, 0, 50, 0, 0, 0, 0, 0, 0]),
        )
        lo, hi = prof.confidence_interval(2)
        assert lo == 0.0
        assert hi > 0.0  # zero observed failures is not proof of zero
