"""Tests for Monte Carlo estimation — including the paper's own
simulator-vs-theory verification (§3, Eq. 1)."""

import numpy as np
import pytest

from repro.core import BatchPeelingDecoder
from repro.graphs import mirrored_graph, striped_graph
from repro.raid import mirrored_system
from repro.sim import profile_graph, sample_fail_fraction
from repro.sim.montecarlo import _random_loss_masks


class TestLossMasks:
    def test_exact_k_per_row(self, rng):
        masks = _random_loss_masks(96, 7, 500, rng)
        assert masks.shape == (500, 96)
        np.testing.assert_array_equal(masks.sum(axis=1), 7)

    def test_uniformity_over_positions(self, rng):
        masks = _random_loss_masks(10, 3, 20_000, rng)
        freq = masks.mean(axis=0)
        np.testing.assert_allclose(freq, 0.3, atol=0.02)


class TestSampleFailFraction:
    def test_zero_loss_never_fails(self, small_tornado, rng):
        assert sample_fail_fraction(small_tornado, 0, 100, rng) == 0.0

    def test_total_loss_always_fails(self, small_tornado, rng):
        frac = sample_fail_fraction(
            small_tornado, small_tornado.num_nodes, 50, rng
        )
        assert frac == 1.0

    def test_rejects_oversized_k(self, small_tornado, rng):
        with pytest.raises(ValueError):
            sample_fail_fraction(small_tornado, 99, 10, rng)

    def test_reuses_supplied_decoder(self, small_tornado, rng):
        decoder = BatchPeelingDecoder(small_tornado)
        frac = sample_fail_fraction(
            small_tornado, 10, 500, rng, decoder=decoder
        )
        assert 0.0 <= frac <= 1.0

    def test_mirror_estimates_match_theory(self):
        """The paper's verification: sampled mirrored values vs Eq. 1."""
        g = mirrored_graph(48)
        theory = mirrored_system(48).profile()
        rng = np.random.default_rng(0)
        for k in (5, 10, 20, 40):
            est = sample_fail_fraction(g, k, 20_000, rng)
            # 20k samples: ~1% absolute tolerance around the truth
            assert est == pytest.approx(theory[k], abs=0.015)


class TestProfileGraph:
    def test_exact_head_is_exact(self, graph3):
        prof = profile_graph(graph3, samples_per_k=200, seed=0)
        # Adjusted catalog graph: zero failures below k=5, tiny at 5.
        assert (prof.fail_fraction[:5] == 0).all()
        assert 0 < prof.fail_fraction[5] < 1e-5
        assert (prof.samples[:7] == 0).all()

    def test_endpoints(self, small_tornado):
        prof = profile_graph(small_tornado, samples_per_k=100, seed=0)
        assert prof.fail_fraction[0] == 0.0
        assert prof.fail_fraction[-1] == 1.0

    def test_mirrored_uses_disjoint_fast_path(self):
        prof = profile_graph(mirrored_graph(48), samples_per_k=50, seed=0)
        theory = mirrored_system(48).profile()
        np.testing.assert_allclose(
            prof.fail_fraction[:7], theory[:7], rtol=1e-12
        )

    def test_striped_falls_back_gracefully(self):
        """Striped graphs trip the counting budget; sampling covers it."""
        prof = profile_graph(striped_graph(96), samples_per_k=50, seed=0)
        assert prof.fail_fraction[0] == 0.0
        # any loss is fatal; sampled and exact entries must agree
        assert (prof.fail_fraction[1:] == 1.0).all()

    def test_sparse_k_grid_interpolates(self, small_tornado):
        prof = profile_graph(
            small_tornado,
            samples_per_k=200,
            seed=0,
            ks=[10, 20],
            exact_upto=4,
        )
        assert prof.fail_fraction.shape == (33,)
        # interpolation keeps values within [0, 1] and monotone-ish ends
        assert (prof.fail_fraction >= 0).all()
        assert (prof.fail_fraction <= 1).all()

    def test_deterministic_under_seed(self, small_tornado):
        p1 = profile_graph(small_tornado, samples_per_k=300, seed=7)
        p2 = profile_graph(small_tornado, samples_per_k=300, seed=7)
        np.testing.assert_array_equal(p1.fail_fraction, p2.fail_fraction)

    def test_parallel_equals_serial(self, small_tornado):
        serial = profile_graph(small_tornado, samples_per_k=200, seed=3)
        parallel = profile_graph(
            small_tornado, samples_per_k=200, seed=3, n_jobs=2
        )
        np.testing.assert_array_equal(
            serial.fail_fraction, parallel.fail_fraction
        )

    def test_profile_metadata(self, small_tornado):
        prof = profile_graph(small_tornado, samples_per_k=100, seed=0)
        assert prof.system_name == small_tornado.name
        assert prof.num_data == small_tornado.num_data


class TestSweepCellWorker:
    def test_worker_matches_direct_call(self, small_tornado):
        """The process-pool worker must reproduce the direct estimator
        bit-for-bit given the same SeedSequence."""
        from repro.sim.montecarlo import _sweep_cell

        seed_seq = np.random.SeedSequence(1234)
        k, frac, elapsed, snapshot, spans = _sweep_cell(
            (small_tornado, 8, 500, seed_seq, False)
        )
        rng = np.random.default_rng(np.random.SeedSequence(1234))
        direct = sample_fail_fraction(small_tornado, 8, 500, rng)
        assert k == 8
        assert frac == direct
        assert elapsed >= 0
        assert snapshot is None
        assert spans == []  # no trace context shipped -> no spans

    def test_worker_collects_metrics_snapshot(self, small_tornado):
        from repro.sim.montecarlo import _sweep_cell

        seed_seq = np.random.SeedSequence(1234)
        k, frac, elapsed, snapshot, spans = _sweep_cell(
            (small_tornado, 8, 500, seed_seq, True)
        )
        assert snapshot is not None
        assert any(
            name.startswith("decoder.") for name in snapshot["counters"]
        )


class TestSweepTracing:
    """Trace propagation through profile_graph's sequential and pooled
    sweep paths: same tree shape and IDs at every worker count."""

    def _traced_records(self, graph, n_jobs, seed=3):
        from repro.obs.trace import Tracer, trace_capture

        with trace_capture(Tracer(seed=seed)) as t:
            profile_graph(
                graph, samples_per_k=50, exact_upto=2, n_jobs=n_jobs
            )
        return t.records

    def test_sequential_sweep_tree(self, small_tornado):
        from repro.obs.analyze import build_trace_trees, span_records

        records = self._traced_records(small_tornado, n_jobs=1)
        roots, orphans = build_trace_trees(span_records(records))
        assert orphans == []
        (root,) = roots
        assert root.name == "profile.sweep"
        assert root.attrs["graph"] == small_tornado.name
        cells = [c for c in root.children if c.name == "profile.cell"]
        assert len(cells) == root.attrs["cells"]
        for cell in cells:
            assert 0.0 <= cell.attrs["frac"] <= 1.0

    def test_parallel_sweep_matches_sequential_ids(self, small_tornado):
        sequential = {
            (r["name"], r["trace_id"], r["span_id"], r["parent_id"])
            for r in self._traced_records(small_tornado, n_jobs=1)
        }
        parallel = {
            (r["name"], r["trace_id"], r["span_id"], r["parent_id"])
            for r in self._traced_records(small_tornado, n_jobs=2)
        }
        assert sequential == parallel

    def test_untraced_sweep_identical_profile(self, small_tornado):
        from repro.obs.trace import Tracer, trace_capture

        plain = profile_graph(small_tornado, samples_per_k=50, seed=3)
        with trace_capture(Tracer(seed=3)):
            traced = profile_graph(
                small_tornado, samples_per_k=50, seed=3
            )
        np.testing.assert_array_equal(
            plain.fail_fraction, traced.fail_fraction
        )
