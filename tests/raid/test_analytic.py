"""Tests for exact RAID-family failure models against ground truth."""

import itertools
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raid import (
    grouped_mds_fail_given_k,
    mirrored_fail_given_k,
    mirrored_system,
    raid5_system,
    raid6_system,
    striped_fail_given_k,
    striped_system,
)


def brute_force_mirror(n_pairs, k):
    """Direct enumeration over all k-subsets of 2*n_pairs devices."""
    devices = range(2 * n_pairs)
    total = fails = 0
    for combo in itertools.combinations(devices, k):
        total += 1
        lost = set(combo)
        if any(i in lost and i + n_pairs in lost for i in range(n_pairs)):
            fails += 1
    return fails / total


def brute_force_grouped(groups, size, tol, k):
    devices = range(groups * size)
    total = fails = 0
    for combo in itertools.combinations(devices, k):
        total += 1
        per = [0] * groups
        for d in combo:
            per[d // size] += 1
        if any(c > tol for c in per):
            fails += 1
    return fails / total


class TestMirrored:
    @pytest.mark.parametrize("k", range(0, 7))
    def test_matches_brute_force(self, k):
        assert mirrored_fail_given_k(4, k) == pytest.approx(
            brute_force_mirror(4, k)
        )

    def test_certain_failure_beyond_pair_count(self):
        assert mirrored_fail_given_k(4, 5) == 1.0
        assert mirrored_fail_given_k(4, 8) == 1.0

    def test_zero_loss_never_fails(self):
        assert mirrored_fail_given_k(48, 0) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mirrored_fail_given_k(4, 9)

    def test_equals_grouped_pairs(self):
        for k in range(0, 9):
            assert mirrored_fail_given_k(4, k) == pytest.approx(
                grouped_mds_fail_given_k(4, 2, 1, k)
            )


class TestGrouped:
    @pytest.mark.parametrize("tol", [1, 2])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_matches_brute_force(self, tol, k):
        assert grouped_mds_fail_given_k(3, 4, tol, k) == pytest.approx(
            brute_force_grouped(3, 4, tol, k)
        )

    def test_raid5_first_failure_at_two(self):
        assert grouped_mds_fail_given_k(8, 12, 1, 1) == 0.0
        assert grouped_mds_fail_given_k(8, 12, 1, 2) > 0.0

    def test_raid6_first_failure_at_three(self):
        assert grouped_mds_fail_given_k(8, 12, 2, 2) == 0.0
        assert grouped_mds_fail_given_k(8, 12, 2, 3) > 0.0

    def test_certain_failure_pigeonhole(self):
        # 8 LUNs tolerating 1 each: 9 failures must break one.
        assert grouped_mds_fail_given_k(8, 12, 1, 9) == 1.0

    def test_full_tolerance_never_fails(self):
        assert grouped_mds_fail_given_k(2, 3, 3, 4) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        groups=st.integers(2, 5),
        size=st.integers(2, 5),
        tol=st.integers(1, 2),
        k=st.integers(0, 6),
    )
    def test_probability_bounds_and_monotonicity(self, groups, size, tol, k):
        total = groups * size
        if k > total:
            return
        p = grouped_mds_fail_given_k(groups, size, tol, k)
        assert 0.0 <= p <= 1.0
        if k + 1 <= total:
            assert grouped_mds_fail_given_k(groups, size, tol, k + 1) >= (
                p - 1e-12
            )


class TestStriped:
    def test_any_loss_fatal(self):
        assert striped_fail_given_k(0) == 0.0
        assert striped_fail_given_k(1) == 1.0
        assert striped_fail_given_k(50) == 1.0


class TestAnalyticSystems:
    def test_paper_capacity_split(self):
        # Paper §4.1: RAID5 has 8 parity disks, RAID6 16, mirror 48.
        assert raid5_system().num_data_devices == 88
        assert raid6_system().num_data_devices == 80
        assert mirrored_system().num_data_devices == 48
        assert striped_system().num_data_devices == 96

    def test_profiles_have_full_support(self):
        for sys in (raid5_system(), raid6_system(), mirrored_system()):
            table = sys.profile()
            assert table.shape == (97,)
            assert table[0] == 0.0
            assert table[-1] == 1.0
            assert (np.diff(table) >= -1e-12).all()  # monotone in k

    def test_fail_given_k_indexing(self):
        sys = mirrored_system(4)
        for k in range(9):
            assert sys.fail_given_k(k) == sys.profile()[k]
