"""Integration tests: full paper-pipeline scenarios across modules."""

import numpy as np

from repro.core import (
    MLDecoder,
    TornadoCodec,
    adjust_graph,
    analyze_worst_case,
    first_failure,
    generate_certified,
    load_graphml,
    save_graphml,
)
from repro.federation import FederatedSystem, federated_first_failure
from repro.graphs import mirrored_graph, tornado_catalog_graph
from repro.raid import mirrored_system, raid5_system, raid6_system
from repro.reliability import reliability_table
from repro.sim import FailureProfile, profile_graph
from repro.storage import (
    DeviceArray,
    StripeMonitor,
    TornadoArchive,
)


class TestPaperPipeline:
    """Generate -> certify -> adjust -> analyse -> persist, end to end."""

    def test_full_graph_production_pipeline(self, tmp_path):
        report = generate_certified(48, seed=69)
        assert first_failure(report.graph, limit=4) == 4

        adjusted = adjust_graph(report.graph, target_first_failure=5)
        assert adjusted.achieved_target

        wc = analyze_worst_case(adjusted.graph, max_k=5)
        assert wc.first_failure == 5
        fails5, total5 = wc.failing_counts[5]
        assert total5 == 61_124_064  # the paper's (96 choose 5)
        assert 0 < fails5 < 100  # paper found 14 for its graph

        # Persist and reload the certified artifact.
        path = tmp_path / "certified.graphml"
        save_graphml(adjusted.graph, path)
        reloaded = load_graphml(path)
        assert reloaded.constraints == adjusted.graph.constraints
        assert first_failure(reloaded, limit=5) == 5

    def test_profile_to_reliability_chain(self, graph3):
        prof = profile_graph(graph3, samples_per_k=1000, seed=0)
        raid_profiles = [
            FailureProfile.from_analytic(s)
            for s in (raid5_system(), raid6_system(), mirrored_system())
        ]
        table = reliability_table(raid_profiles + [prof])
        # Tornado must come out most reliable (last row).
        assert table[-1].system_name == graph3.name
        assert table[-1].p_fail < table[0].p_fail / 1e4


class TestArchiveLifecycle:
    def test_store_damage_monitor_repair_retrieve(self, graph3, rng):
        devices = DeviceArray(96)
        archive = TornadoArchive(graph3, devices, block_size=128)
        monitor = StripeMonitor(archive, repair_margin=2)

        payloads = {
            f"object-{i}": bytes(rng.integers(0, 256, 5000, dtype=np.uint8))
            for i in range(3)
        }
        for name, payload in payloads.items():
            archive.put(name, payload)

        # Several rounds of failures within the safe margin + repair.
        for _round in range(3):
            devices.fail_random(2, rng)
            report = monitor.scan()
            assert report.worst().margin >= 0
            devices.rebuild_all()
            monitor.repair_cycle()

        for name, payload in payloads.items():
            assert archive.get(name) == payload

    def test_ml_decoder_as_archive_fallback(self, graph3, rng):
        """When peeling fails, ML decoding may still save the data."""
        codec = TornadoCodec(graph3, block_size=32)
        data = rng.integers(0, 256, (48, 32), dtype=np.uint8)
        blocks = codec.encode_blocks(data)
        ml = MLDecoder(graph3)
        # find a loss pattern where peeling fails but ML succeeds
        found = 0
        for _ in range(300):
            lost = rng.choice(96, size=30, replace=False)
            present = np.ones(96, dtype=bool)
            present[lost] = False
            peel_ok = True
            try:
                codec.decode_blocks(blocks, present)
            except Exception:
                peel_ok = False
            if not peel_ok and ml.is_recoverable(lost):
                out = ml.decode_blocks(blocks, present)
                np.testing.assert_array_equal(out, data)
                found += 1
                break
        # The gap case is common at 30 losses; not finding one in 300
        # draws would itself be suspicious, but do not hard-fail: the
        # invariant (ML decode correct when analyze says so) is what
        # matters and was asserted above when found.
        assert found <= 1


class TestFederationScenario:
    def test_two_sites_survive_what_one_cannot(self):
        g1 = tornado_catalog_graph(1)
        g2 = tornado_catalog_graph(2)
        system = FederatedSystem([g1, g2])

        # A loss that kills site 1 alone (one of its critical 5-sets).
        wc = analyze_worst_case(g1, max_k=5)
        critical = sorted(next(iter(wc.minimal_sets)))
        from repro.core import PeelingDecoder

        assert not PeelingDecoder(g1).is_recoverable(critical)
        # Federated, the same loss is covered by site 2.
        assert system.is_recoverable(critical)

    def test_federated_first_failure_beats_mirror_4copy(self):
        m = mirrored_graph(48)
        mirror_sys = FederatedSystem([m, m])
        mirror_ff = federated_first_failure(mirror_sys, site_max_size=3)[0]

        g1 = tornado_catalog_graph(1)
        same_sys = FederatedSystem([g1, g1])
        same_ff = federated_first_failure(same_sys, site_max_size=6)[0]
        assert mirror_ff == 4
        assert same_ff == 10
        assert same_ff > mirror_ff
