"""Shared fixtures: small graphs, catalog graphs, deterministic RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Constraint,
    ErasureGraph,
    tornado_graph,
)
from repro.graphs import mirrored_graph, tornado_catalog_graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> ErasureGraph:
    """Hand-built 6-node graph with known decoding behaviour.

    Data nodes 0-2; checks: 3 = 0^1, 4 = 1^2, 5 = 0^1^2.
    """
    return ErasureGraph(
        num_nodes=6,
        data_nodes=(0, 1, 2),
        constraints=(
            Constraint(check=3, lefts=(0, 1)),
            Constraint(check=4, lefts=(1, 2)),
            Constraint(check=5, lefts=(0, 1, 2)),
        ),
        name="tiny",
    )


@pytest.fixture
def small_tornado() -> ErasureGraph:
    """The smallest constructible cascade (32 nodes, 16 data)."""
    return tornado_graph(16, seed=3, min_final_lefts=6)


@pytest.fixture(scope="session")
def graph3() -> ErasureGraph:
    """Catalog Tornado Graph 3 (96 nodes, first failure 5)."""
    return tornado_catalog_graph(3)


@pytest.fixture(scope="session")
def mirror96() -> ErasureGraph:
    return mirrored_graph(48)
