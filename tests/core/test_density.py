"""Tests for density evolution (asymptotic threshold analysis)."""

import numpy as np
import pytest

from repro.core import (
    EdgeDistribution,
    edge_polynomial,
    realized_level_distributions,
    recovery_threshold,
    density_report,
    tornado_graph,
)
from repro.core.degree import (
    heavy_tail_distribution,
    poisson_distribution,
    solve_poisson_alpha,
)


class TestEdgePolynomial:
    def test_single_degree(self):
        # all edges degree 3: lambda(x) = x^2
        coeffs = edge_polynomial(EdgeDistribution(((3, 1.0),)))
        np.testing.assert_allclose(coeffs, [0, 0, 1.0])

    def test_mixture_sums_to_one_at_x_equals_one(self):
        dist = heavy_tail_distribution(10)
        coeffs = edge_polynomial(dist)
        assert coeffs.sum() == pytest.approx(1.0)


class TestRecoveryThreshold:
    def test_regular_3_6_known_value(self):
        """The (3,6)-regular LDPC erasure threshold is ~0.4294."""
        left = EdgeDistribution(((3, 1.0),))
        right = EdgeDistribution(((6, 1.0),))
        assert recovery_threshold(left, right) == pytest.approx(
            0.4294, abs=2e-3
        )

    def test_threshold_below_capacity(self):
        """No rate-1/2 pair exceeds the delta = 1/2 capacity... the
        function itself only guarantees [0, 1]; check design pair."""
        lam = heavy_tail_distribution(16)
        alpha = solve_poisson_alpha(
            lam.average_node_degree() / 0.5, 48
        )
        rho = poisson_distribution(alpha, 48)
        delta = recovery_threshold(lam, rho)
        assert 0.40 < delta < 0.50

    def test_heavier_right_degree_lowers_threshold(self):
        left = EdgeDistribution(((3, 1.0),))
        mid = recovery_threshold(left, EdgeDistribution(((6, 1.0),)))
        heavy = recovery_threshold(left, EdgeDistribution(((12, 1.0),)))
        assert heavy < mid

    def test_bounded_by_one(self):
        # Degenerate pair: very weak right side -> ratio capped at 1.
        left = EdgeDistribution(((2, 1.0),))
        right = EdgeDistribution(((2, 1.0),))
        delta = recovery_threshold(left, right)
        assert 0.0 < delta <= 1.0


class TestRealizedDistributions:
    def test_roundtrip_against_graph_degrees(self):
        g = tornado_graph(48, seed=0)
        left, right = realized_level_distributions(g, level=0)
        # average node degrees implied by the realized distributions
        # must match the actual level-0 structure
        cons = [g.constraints[ci] for ci in g.levels[0]]
        edges = sum(len(c.lefts) for c in cons)
        assert right.average_node_degree() == pytest.approx(
            edges / len(cons)
        )
        assert left.average_node_degree() == pytest.approx(
            edges / 48
        )

    def test_rejects_bad_level(self):
        g = tornado_graph(16, seed=0)
        with pytest.raises(ValueError):
            realized_level_distributions(g, level=9)

    def test_density_report(self):
        g = tornado_graph(48, seed=0)
        rep = density_report(g, level=0)
        assert rep.design_threshold is None
        assert 0.0 < rep.realized_threshold <= 1.0
        assert "delta*" in rep.describe()

    def test_design_vs_realized_close_for_large_level(self):
        """Realized level-0 degrees track the design distribution."""
        lam = heavy_tail_distribution(16)
        alpha = solve_poisson_alpha(
            lam.average_node_degree() / 0.5, 48
        )
        rho = poisson_distribution(alpha, 48)
        g = tornado_graph(48, seed=0)
        rep = density_report(g, 0, design_left=lam, design_right=rho)
        assert rep.realized_threshold == pytest.approx(
            rep.design_threshold, abs=0.05
        )
