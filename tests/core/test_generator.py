"""Tests for certified graph generation."""

import pytest

from repro.core import (
    GenerationError,
    first_failure,
    generate_certified,
    has_defects,
)


class TestGenerateCertified:
    def test_result_has_no_small_defects(self):
        report = generate_certified(48, seed=0)
        assert not has_defects(report.graph, max_size=3)

    def test_first_failure_at_least_four(self):
        report = generate_certified(48, seed=0)
        ff = first_failure(report.graph, limit=4)
        assert ff is None or ff == 4

    def test_deterministic(self):
        r1 = generate_certified(48, seed=5)
        r2 = generate_certified(48, seed=5)
        assert r1.graph == r2.graph
        assert r1.seed_used == r2.seed_used

    def test_report_bookkeeping(self):
        report = generate_certified(48, seed=0)
        assert report.attempts == report.seed_used - 0 + 1
        assert report.rejected_seeds == tuple(
            range(0, report.seed_used)
        )
        assert 0 <= report.rejection_rate <= 1

    def test_raises_when_budget_exhausted(self):
        with pytest.raises(GenerationError):
            generate_certified(48, seed=0, max_attempts=1, defect_size=5)

    def test_small_graphs_also_certifiable(self):
        report = generate_certified(16, seed=0, defect_size=2)
        assert not has_defects(report.graph, max_size=2)

    def test_custom_name(self):
        report = generate_certified(48, seed=32, name="my-graph")
        assert report.graph.name == "my-graph"
