"""Tests for the edge-socket bipartite sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MultiEdgeRepairError, random_bipartite_edges


def degree_counts(edges, side, n):
    counts = [0] * n
    for pair in edges:
        counts[pair[side]] += 1
    return counts


class TestRandomBipartite:
    def test_respects_degree_sequences(self, rng):
        left = [3, 2, 2, 3]
        right = [2, 2, 2, 2, 2]
        edges = random_bipartite_edges(left, right, rng)
        assert degree_counts(edges, 0, 4) == left
        assert degree_counts(edges, 1, 5) == right

    def test_no_parallel_edges(self, rng):
        left = [4] * 12
        right = [6] * 8
        edges = random_bipartite_edges(left, right, rng)
        assert len(set(edges)) == len(edges)

    def test_rejects_mismatched_totals(self, rng):
        with pytest.raises(ValueError, match="edge totals differ"):
            random_bipartite_edges([2, 2], [3], rng)

    def test_rejects_impossible_left_degree(self, rng):
        # One left wants 3 distinct rights but only 2 exist.
        with pytest.raises(MultiEdgeRepairError):
            random_bipartite_edges([3, 1], [2, 2], rng)

    def test_complete_bipartite_corner_case(self, rng):
        # Every left connected to every right: zero randomness possible.
        edges = random_bipartite_edges([2, 2], [2, 2], rng)
        assert sorted(edges) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_deterministic_under_fixed_rng(self):
        e1 = random_bipartite_edges(
            [3, 2, 2], [3, 2, 2], np.random.default_rng(7)
        )
        e2 = random_bipartite_edges(
            [3, 2, 2], [3, 2, 2], np.random.default_rng(7)
        )
        assert e1 == e2

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        nl=st.integers(2, 20),
        deg=st.integers(1, 4),
    )
    def test_property_simple_and_degree_exact(self, seed, nl, deg):
        rng = np.random.default_rng(seed)
        nr = max(deg, nl // 2)
        left = [deg] * nl
        total = deg * nl
        base, extra = divmod(total, nr)
        right = [base + (1 if i < extra else 0) for i in range(nr)]
        if max(right) > nl:  # infeasible simple graph; skip
            return
        edges = random_bipartite_edges(left, right, rng)
        assert len(set(edges)) == len(edges)
        assert degree_counts(edges, 0, nl) == left
        assert degree_counts(edges, 1, nr) == right
