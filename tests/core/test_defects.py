"""Tests for structural defect detection (paper §3.2)."""


from repro.core import (
    Constraint,
    ErasureGraph,
    find_defects,
    has_defects,
    shared_right_set_pairs,
)


def graph_with_shared_right_pair() -> ErasureGraph:
    """Reproduce the paper's defect: nodes 0 and 1 share checks {4, 5}."""
    return ErasureGraph(
        num_nodes=6,
        data_nodes=(0, 1, 2, 3),
        constraints=(
            Constraint(check=4, lefts=(0, 1)),
            Constraint(check=5, lefts=(0, 1, 2, 3)),
        ),
        name="defective",
    )


def healthy_tiny_graph() -> ErasureGraph:
    return ErasureGraph(
        num_nodes=6,
        data_nodes=(0, 1, 2),
        constraints=(
            Constraint(check=3, lefts=(0, 1)),
            Constraint(check=4, lefts=(1, 2)),
            Constraint(check=5, lefts=(0, 2)),
        ),
        name="healthy",
    )


class TestSharedRightPairs:
    def test_detects_paper_pattern(self):
        g = graph_with_shared_right_pair()
        assert (0, 1) in shared_right_set_pairs(g)

    def test_no_false_positive(self):
        assert shared_right_set_pairs(healthy_tiny_graph()) == []

    def test_groups_of_three_yield_all_pairs(self):
        g = ErasureGraph(
            num_nodes=5,
            data_nodes=(0, 1, 2),
            constraints=(
                Constraint(check=3, lefts=(0, 1, 2)),
                Constraint(check=4, lefts=(0, 1, 2)),
            ),
        )
        assert shared_right_set_pairs(g) == [(0, 1), (0, 2), (1, 2)]


class TestDefectScreen:
    def test_shared_pair_is_a_size2_defect(self):
        g = graph_with_shared_right_pair()
        defects = find_defects(g, max_size=2)
        assert any(d.nodes == frozenset({0, 1}) for d in defects)
        assert defects[0].size <= 2

    def test_has_defects_boolean(self):
        assert has_defects(graph_with_shared_right_pair(), max_size=2)

    def test_defect_screen_agrees_with_pattern_scan(self):
        """The exact stopping-set screen must subsume the pattern scan."""
        g = graph_with_shared_right_pair()
        pattern_pairs = {frozenset(p) for p in shared_right_set_pairs(g)}
        defect_sets = {d.nodes for d in find_defects(g, max_size=2)}
        for pair in pattern_pairs:
            assert any(d <= pair or d == pair for d in defect_sets)

    def test_defect_str(self):
        g = graph_with_shared_right_pair()
        d = find_defects(g, max_size=2)[0]
        assert str(d).startswith("defect[")

    def test_certified_catalog_graph_is_clean(self, graph3):
        assert not has_defects(graph3, max_size=3)
        assert not has_defects(graph3, max_size=4)
