"""Tests for edge-degree distributions and the node-count solver."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EdgeDistribution,
    allocate_node_degrees,
    doubled,
    heavy_tail_distribution,
    match_edge_total,
    poisson_distribution,
    shifted,
    solve_poisson_alpha,
)


class TestEdgeDistribution:
    def test_normalises_weights(self):
        d = EdgeDistribution(((2, 2.0), (3, 2.0)))
        assert d.fraction(2) == pytest.approx(0.5)
        assert d.fraction(3) == pytest.approx(0.5)

    def test_drops_zero_weights(self):
        d = EdgeDistribution(((2, 1.0), (3, 0.0)))
        assert d.degrees == (2,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EdgeDistribution(())

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            EdgeDistribution(((0, 1.0),))

    def test_unknown_degree_fraction_is_zero(self):
        d = EdgeDistribution(((2, 1.0),))
        assert d.fraction(7) == 0.0

    def test_average_node_degree_single_degree(self):
        # All edges at degree 4 => average node degree 4.
        d = EdgeDistribution(((4, 1.0),))
        assert d.average_node_degree() == pytest.approx(4.0)


class TestHeavyTail:
    def test_degrees_run_2_to_d_plus_1(self):
        d = heavy_tail_distribution(5)
        assert d.degrees == (2, 3, 4, 5, 6)

    def test_weights_proportional_to_inverse_i_minus_1(self):
        d = heavy_tail_distribution(5)
        assert d.fraction(2) / d.fraction(3) == pytest.approx(2.0)

    def test_average_degree_formula(self):
        # a = (D+1) H(D) / D
        D = 16
        h = sum(1 / j for j in range(1, D + 1))
        expect = (D + 1) * h / D
        assert heavy_tail_distribution(D).average_node_degree() == (
            pytest.approx(expect)
        )

    def test_d16_matches_paper_average_degree(self):
        # The paper's graphs averaged ~3.6.
        assert heavy_tail_distribution(16).average_node_degree() == (
            pytest.approx(3.59, abs=0.01)
        )

    def test_rejects_nonpositive_d(self):
        with pytest.raises(ValueError):
            heavy_tail_distribution(0)


class TestPoisson:
    def test_truncated_below_at_two(self):
        d = poisson_distribution(3.0, 8)
        assert min(d.degrees) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson_distribution(0.0, 8)
        with pytest.raises(ValueError):
            poisson_distribution(1.0, 1)

    def test_solver_inverts_average(self):
        alpha = solve_poisson_alpha(6.5, 20)
        got = poisson_distribution(alpha, 20).average_node_degree()
        assert got == pytest.approx(6.5, abs=1e-6)

    def test_solver_rejects_unreachable_target(self):
        # max_degree 3 cannot average 50.
        with pytest.raises(ValueError):
            solve_poisson_alpha(50.0, 3)


class TestAllocation:
    def test_exact_node_count(self):
        d = heavy_tail_distribution(8)
        degrees = allocate_node_degrees(d, 48)
        assert len(degrees) == 48

    def test_small_count_allocation_succeeds(self):
        # The paper's problem case: distributions over tiny levels.
        d = heavy_tail_distribution(16)
        degrees = allocate_node_degrees(d, 6)
        assert len(degrees) == 6
        assert all(dd >= 2 for dd in degrees)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            allocate_node_degrees(heavy_tail_distribution(4), 0)

    def test_deterministic(self):
        d = heavy_tail_distribution(12)
        assert allocate_node_degrees(d, 30) == allocate_node_degrees(d, 30)

    @settings(max_examples=50, deadline=None)
    @given(
        dmax=st.integers(2, 20),
        num_nodes=st.integers(1, 200),
    )
    def test_allocation_always_sums_to_target(self, dmax, num_nodes):
        d = heavy_tail_distribution(dmax)
        degrees = allocate_node_degrees(d, num_nodes)
        assert len(degrees) == num_nodes
        assert all(2 <= dd <= dmax + 1 for dd in degrees)


class TestMatchEdgeTotal:
    def test_noop_when_sum_matches(self):
        assert match_edge_total([3, 3, 2], 8) == [3, 3, 2]

    def test_grows_degrees(self):
        seq = match_edge_total([2, 2, 2], 9)
        assert sum(seq) == 9

    def test_shrinks_degrees_respecting_minimum(self):
        seq = match_edge_total([5, 5, 5], 9, min_degree=2)
        assert sum(seq) == 9
        assert min(seq) >= 2

    def test_raises_when_minimum_blocks_shrink(self):
        with pytest.raises(ValueError):
            match_edge_total([2, 2], 3, min_degree=2)

    @settings(max_examples=50, deadline=None)
    @given(
        degrees=st.lists(st.integers(2, 12), min_size=1, max_size=30),
        delta=st.integers(-10, 20),
    )
    def test_property_sum_and_floor(self, degrees, delta):
        target = max(sum(degrees) + delta, len(degrees))  # >= 1 per node
        seq = match_edge_total(degrees, target, min_degree=1)
        assert sum(seq) == target
        assert min(seq) >= 1


class TestAlterations:
    def test_doubled_doubles_degrees(self):
        d = EdgeDistribution(((2, 0.5), (4, 0.5)))
        assert doubled(d).degrees == (4, 8)

    def test_shifted_shifts_degrees(self):
        d = EdgeDistribution(((2, 0.5), (4, 0.5)))
        assert shifted(d).degrees == (3, 5)

    def test_shift_below_one_rejected(self):
        d = EdgeDistribution(((1, 1.0),))
        with pytest.raises(ValueError):
            shifted(d, -1)

    def test_alterations_preserve_normalisation(self):
        d = heavy_tail_distribution(6)
        for alt in (doubled(d), shifted(d)):
            assert sum(w for _, w in alt.weights) == pytest.approx(1.0)
