"""Sparse CSR engine: CsrGraph, chunked peeling, masks, JIT kernel.

Cross-engine *agreement* lives in test_engines.py; this file covers
what is unique to the sparse path — the CSR graph container and its
vectorised generator, chunked plane sweeps, the bounded-memory mask
generator, the plain-Python/numba kernel equivalence, and the CsrGraph
routing rules in make_batch_decoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BitsetBatchDecoder,
    CsrGraph,
    EngineUnsupportedError,
    SparseBitsetDecoder,
    make_batch_decoder,
    pack_cases,
    packed_random_loss_masks,
    packed_sparse_loss_masks,
    tornado_csr_graph,
    tornado_graph,
    unpack_cases,
)
from repro.core import sparse as sparse_module


@pytest.fixture(scope="module")
def csr16k():
    """One mid-size CSR cascade shared across the module."""
    return tornado_csr_graph(1 << 12, seed=11)


class TestCsrGraph:
    def test_from_graph_round_trip(self, small_tornado):
        csr = CsrGraph.from_graph(small_tornado)
        back = csr.to_graph()
        assert back.num_nodes == small_tornado.num_nodes
        assert back.data_nodes == small_tornado.data_nodes
        assert [c.members() for c in back.constraints] == [
            c.members() for c in small_tornado.constraints
        ]

    def test_constraint_members_match_graph(self, small_tornado):
        csr = CsrGraph.from_graph(small_tornado)
        assert csr.constraint_members() == [
            c.members() for c in small_tornado.constraints
        ]

    def test_generator_shape_invariants(self, csr16k):
        g = csr16k
        assert g.num_data == 1 << 12
        assert g.num_nodes == g.num_data + g.num_constraints
        lens = np.diff(g.con_indptr)
        # Every constraint has a check plus at least two lefts.
        assert (lens >= 3).all()
        # The check (first member) of constraint i is a non-data node.
        checks = np.asarray(g.con_nodes)[np.asarray(g.con_indptr[:-1])]
        assert (checks >= g.num_data).all()
        assert np.array_equal(np.sort(checks), np.unique(checks))
        # Members are valid node ids.
        assert np.asarray(g.con_nodes).min() >= 0
        assert np.asarray(g.con_nodes).max() < g.num_nodes

    def test_generator_deterministic(self):
        a = tornado_csr_graph(1 << 8, seed=4)
        b = tornado_csr_graph(1 << 8, seed=4)
        c = tornado_csr_graph(1 << 8, seed=5)
        assert np.array_equal(a.con_nodes, b.con_nodes)
        assert np.array_equal(a.con_indptr, b.con_indptr)
        assert not np.array_equal(a.con_nodes, c.con_nodes)

    def test_zero_loss_always_decodes(self, csr16k):
        dec = SparseBitsetDecoder(csr16k)
        packed = np.zeros((csr16k.num_nodes, 2), dtype=np.uint64)
        assert dec.decode_packed(packed, 128).all()

    def test_full_loss_never_decodes(self, csr16k):
        dec = SparseBitsetDecoder(csr16k)
        packed = np.full(
            (csr16k.num_nodes, 1), ~np.uint64(0), dtype=np.uint64
        )
        assert not dec.decode_packed(packed, 64).any()


class TestCsrRouting:
    def test_make_batch_decoder_accepts_csr(self, csr16k, monkeypatch):
        monkeypatch.delenv("REPRO_DECODE_ENGINE", raising=False)
        dec = make_batch_decoder(csr16k, engine="sparse")
        assert isinstance(dec, SparseBitsetDecoder)

    def test_non_sparse_engine_refuses_csr(self, csr16k):
        with pytest.raises(EngineUnsupportedError, match="CsrGraph"):
            make_batch_decoder(csr16k, engine="bitset")
        with pytest.raises(EngineUnsupportedError, match="CsrGraph"):
            make_batch_decoder(csr16k, engine="matmul")

    def test_csr_equivalent_to_object_graph(self, small_tornado):
        csr = CsrGraph.from_graph(small_tornado)
        rng = np.random.default_rng(0)
        masks = packed_random_loss_masks(
            small_tornado.num_nodes, 9, 512, rng
        )
        via_csr = SparseBitsetDecoder(csr).decode_packed(masks, 512)
        via_obj = SparseBitsetDecoder(small_tornado).decode_packed(
            masks, 512
        )
        via_bit = BitsetBatchDecoder(small_tornado).decode_packed(
            masks, 512
        )
        assert np.array_equal(via_csr, via_obj)
        assert np.array_equal(via_csr, via_bit)


class TestChunking:
    def test_tiny_chunk_matches_default(self, csr16k):
        """Chunked plane sweeps are invisible in the results."""
        rng = np.random.default_rng(3)
        masks = packed_sparse_loss_masks(
            csr16k.num_nodes, csr16k.num_nodes // 6, 256, rng
        )
        full = SparseBitsetDecoder(csr16k).decode_packed(masks, 256)
        tiny = SparseBitsetDecoder(csr16k, chunk=7).decode_packed(
            masks, 256
        )
        assert np.array_equal(full, tiny)

    def test_zero_copy_from_csr_readonly(self, csr16k):
        """from_csr tolerates read-only views (the shm attach path)."""
        con_nodes = np.asarray(csr16k.con_nodes).copy()
        con_nodes.flags.writeable = False
        indptr = np.asarray(csr16k.con_indptr).copy()
        indptr.flags.writeable = False
        dec = SparseBitsetDecoder.from_csr(
            con_nodes, indptr, csr16k.data_nodes, csr16k.num_nodes
        )
        rng = np.random.default_rng(1)
        masks = packed_sparse_loss_masks(
            csr16k.num_nodes, csr16k.num_nodes // 8, 128, rng
        )
        ref = SparseBitsetDecoder(csr16k).decode_packed(masks, 128)
        assert np.array_equal(dec.decode_packed(masks, 128), ref)


class TestSparseMaskGenerator:
    def test_exact_k_per_case(self):
        rng = np.random.default_rng(7)
        for n, k, batch in ((100, 13, 130), (9000, 411, 200),
                            (16384, 1, 65)):
            packed = packed_sparse_loss_masks(n, k, batch, rng)
            masks = unpack_cases(packed, batch)
            assert (masks.sum(axis=1) == k).all(), (n, k)
            # Pad lanes beyond the batch stay zero.
            w = packed.shape[1]
            assert not unpack_cases(packed, w * 64)[batch:].any()

    def test_k_zero_and_k_n(self):
        rng = np.random.default_rng(7)
        assert not packed_sparse_loss_masks(50, 0, 64, rng).any()
        full = packed_sparse_loss_masks(50, 50, 64, rng)
        assert unpack_cases(full, 64).all()

    def test_rejects_out_of_range_k(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            packed_sparse_loss_masks(10, 11, 64, rng)

    def test_deterministic(self):
        a = packed_sparse_loss_masks(
            9001, 900, 192, np.random.default_rng(5)
        )
        b = packed_sparse_loss_masks(
            9001, 900, 192, np.random.default_rng(5)
        )
        assert np.array_equal(a, b)

    def test_marginals_roughly_uniform(self):
        """Each node is lost with probability ~k/n across cases."""
        n, k, batch = 600, 60, 4096
        packed = packed_sparse_loss_masks(
            n, k, batch, np.random.default_rng(2)
        )
        counts = unpack_cases(packed, batch).sum(axis=0)
        expect = batch * k / n
        sigma = (batch * (k / n) * (1 - k / n)) ** 0.5
        assert abs(counts.mean() - expect) < 0.5
        assert (np.abs(counts - expect) < 6 * sigma).all()


class TestPlaneKernel:
    def test_python_kernel_matches_numpy_sweep(self, small_tornado):
        """The JIT source, run as plain Python, is the same function.

        This is the differential oracle promised in the module
        docstring: numba only compiles `_plane_kernel`, so verifying
        the uncompiled function against the NumPy sweep covers the JIT
        path's algorithm whether or not numba is installed.
        """
        dec = SparseBitsetDecoder(small_tornado)
        rng = np.random.default_rng(0)
        ua = rng.integers(
            0, 1 << 62, size=(small_tornado.num_nodes, 5),
            dtype=np.uint64,
        )
        rows = np.arange(dec._num_cons, dtype=np.intp)
        rl = dec._lens[rows]
        once_np = np.empty((rows.size, 5), dtype=np.uint64)
        twice_np = np.empty_like(once_np)
        dec._planes_numpy(ua, rows, rl, once_np, twice_np)
        once_py = np.empty_like(once_np)
        twice_py = np.empty_like(once_np)
        sparse_module._plane_kernel(
            ua, dec._con_nodes, dec._base[rows], rl, once_py, twice_py
        )
        assert np.array_equal(once_np, once_py)
        assert np.array_equal(twice_np, twice_py)

    def test_jit_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_JIT", "0")
        assert sparse_module._detect_jit() is None

    def test_jit_flag_reported(self):
        # Auto-detection: enabled iff numba imported and compiled.
        try:
            import numba  # noqa: F401
            has_numba = True
        except ImportError:
            has_numba = False
        if not has_numba:
            assert sparse_module.jit_enabled() is False

    def test_forced_jit_decode_matches_numpy(self, small_tornado):
        """jit=True/False give identical decodes (numba or not)."""
        rng = np.random.default_rng(4)
        masks = packed_random_loss_masks(
            small_tornado.num_nodes, 8, 256, rng
        )
        a = SparseBitsetDecoder(small_tornado, jit=False).decode_packed(
            masks, 256
        )
        b = SparseBitsetDecoder(small_tornado, jit=True).decode_packed(
            masks, 256
        )
        assert np.array_equal(a, b)


class TestLargeGraphSmoke:
    def test_2e17_node_decode(self):
        """A 2^17-node cascade decodes a packed batch within memory."""
        graph = tornado_csr_graph(1 << 16, seed=9)
        assert graph.num_nodes == 1 << 17
        dec = SparseBitsetDecoder(graph)
        rng = np.random.default_rng(0)
        k = graph.num_nodes // 20
        masks = packed_sparse_loss_masks(graph.num_nodes, k, 128, rng)
        ok = dec.decode_packed(masks, 128)
        # 5% loss on a rate-1/2 cascade overwhelmingly decodes.
        assert ok.mean() > 0.9

    def test_spot_check_against_bitset(self):
        """One 2^13-node graph: sparse vs bitset, bit for bit."""
        graph = tornado_csr_graph(1 << 12, seed=2)
        obj = graph.to_graph()
        rng = np.random.default_rng(1)
        masks = packed_random_loss_masks(
            graph.num_nodes, graph.num_nodes // 4, 256, rng
        )
        sp = SparseBitsetDecoder(graph).decode_packed(masks, 256)
        bit = BitsetBatchDecoder(obj).decode_packed(masks, 256)
        assert np.array_equal(sp, bit)
        assert 0 < sp.sum() < 256  # mixed outcomes: a real spot check


def test_pack_cases_consistency(small_tornado):
    """Sanity: sparse decode_batch goes through pack_cases unchanged."""
    rng = np.random.default_rng(8)
    masks = rng.random((100, small_tornado.num_nodes)) < 0.2
    dec = SparseBitsetDecoder(small_tornado)
    assert np.array_equal(
        dec.decode_batch(masks),
        dec.decode_packed(pack_cases(masks), 100),
    )
