"""Tests for GraphML persistence and failure rendering."""

import pytest

from repro.core import (
    from_networkx,
    load_graphml,
    render_failure,
    save_graphml,
    to_networkx,
    tornado_graph,
)
from repro.graphs import mirrored_graph, regular_graph, striped_graph


class TestNetworkxRoundtrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: tornado_graph(16, seed=4),
            lambda: mirrored_graph(8),
            lambda: striped_graph(8),
            lambda: regular_graph(12, 3, seed=0),
        ],
        ids=["tornado", "mirror", "striped", "regular"],
    )
    def test_roundtrip_preserves_structure(self, factory):
        g = factory()
        g2 = from_networkx(to_networkx(g))
        assert g2.num_nodes == g.num_nodes
        assert g2.data_nodes == g.data_nodes
        assert g2.constraints == g.constraints
        assert g2.levels == g.levels
        assert g2.name == g.name

    def test_node_attributes(self):
        g = tornado_graph(16, seed=4)
        nxg = to_networkx(g)
        assert nxg.nodes[0]["kind"] == "data"
        check = g.constraints[0].check
        assert nxg.nodes[check]["kind"] == "check"
        assert nxg.nodes[check]["level"] == 1

    def test_edge_constraint_attribute(self):
        g = tornado_graph(16, seed=4)
        nxg = to_networkx(g)
        con = g.constraints[0]
        attrs = nxg.get_edge_data(con.lefts[0], con.check)
        assert attrs["constraint"] == 0


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        g = tornado_graph(16, seed=4)
        path = tmp_path / "graph.graphml"
        save_graphml(g, path)
        g2 = load_graphml(path)
        assert g2.constraints == g.constraints
        assert g2.levels == g.levels

    def test_file_is_valid_graphml_xml(self, tmp_path):
        g = mirrored_graph(4)
        path = tmp_path / "mirror.graphml"
        save_graphml(g, path)
        text = path.read_text()
        assert "<graphml" in text


class TestRenderFailure:
    def test_success_message(self, tiny_graph):
        out = render_failure(tiny_graph, [0])
        assert "succeeded" in out
        assert "1 nodes lost" in out

    def test_failure_lists_stuck_nodes_paper_style(self, tiny_graph):
        out = render_failure(tiny_graph, [0, 1, 3, 5])
        assert "FAILED" in out
        # paper style "node [ right nodes ]"
        assert "[" in out and "]" in out
        assert "closed right set" in out

    def test_failure_on_mirror_pair(self):
        g = mirrored_graph(4)
        out = render_failure(g, [0, 4])
        assert "FAILED" in out
        assert "0 [4]" in out
