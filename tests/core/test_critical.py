"""Tests for stopping-set search, exact counting, and worst-case analysis."""

import itertools
from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Constraint,
    ErasureGraph,
    PeelingDecoder,
    analyze_worst_case,
    count_failing_sets,
    exhaustive_failing_sets,
    failing_set_counts,
    first_failure,
    is_stopping_set,
    min_bad_stopping_set_containing,
    minimal_bad_stopping_sets,
    tornado_graph,
)
from repro.core.critical import CountBudgetExceeded
from repro.graphs import mirrored_graph, striped_graph


class TestIsStoppingSet:
    def test_empty_set_is_stopping(self, tiny_graph):
        assert is_stopping_set(tiny_graph, [])

    def test_residuals_are_stopping_sets(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        res = dec.decode([0, 1, 3, 5])
        assert is_stopping_set(tiny_graph, res.residual)

    def test_single_node_with_constraint_not_stopping(self, tiny_graph):
        assert not is_stopping_set(tiny_graph, [0])

    def test_striped_singletons_are_stopping(self):
        g = striped_graph(4)
        assert is_stopping_set(g, [2])

    def test_mirror_pair_is_stopping(self):
        g = mirrored_graph(4)
        assert is_stopping_set(g, [0, 4])
        assert not is_stopping_set(g, [0, 5])


class TestMinimalBadStoppingSets:
    def test_mirror_pairs_found(self):
        g = mirrored_graph(4)
        sets = minimal_bad_stopping_sets(g, max_size=2)
        assert sorted(tuple(sorted(s)) for s in sets) == [
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
        ]

    def test_striped_singletons_found(self):
        g = striped_graph(4)
        sets = minimal_bad_stopping_sets(g, max_size=1)
        assert sorted(tuple(sorted(s)) for s in sets) == [
            (0,),
            (1,),
            (2,),
            (3,),
        ]

    def test_results_are_minimal(self, small_tornado):
        sets = minimal_bad_stopping_sets(small_tornado, max_size=5)
        for a in sets:
            for b in sets:
                if a is not b:
                    assert not a < b

    def test_every_result_is_bad_stopping_set(self, small_tornado):
        data = set(small_tornado.data_nodes)
        for s in minimal_bad_stopping_sets(small_tornado, max_size=5):
            assert is_stopping_set(small_tornado, s)
            assert s & data

    def test_matches_exhaustive_enumeration(self, small_tornado):
        """Ground truth: every failing k-set contains a found set and
        every found set fails."""
        dec = PeelingDecoder(small_tornado)
        sets = minimal_bad_stopping_sets(small_tornado, max_size=3)
        n = small_tornado.num_nodes
        for k in (1, 2, 3):
            for combo in itertools.combinations(range(n), k):
                fails = not dec.is_recoverable(combo)
                covered = any(s <= set(combo) for s in sets)
                assert fails == covered, combo


class TestMinBadContaining:
    def test_mirror_minimum_through_each_data_node(self):
        g = mirrored_graph(4)
        for d in range(4):
            s = min_bad_stopping_set_containing(g, d, max_size=4)
            assert s == frozenset({d, d + 4})

    def test_none_when_bound_too_small(self, graph3):
        # Adjusted catalog graph: no bad set of size < 5.
        assert (
            min_bad_stopping_set_containing(graph3, 0, max_size=3) is None
        )

    def test_rejects_check_node_seed(self, tiny_graph):
        with pytest.raises(ValueError, match="not a data node"):
            min_bad_stopping_set_containing(tiny_graph, 5, max_size=3)

    def test_result_contains_seed_and_is_stopping(self, small_tornado):
        d = small_tornado.data_nodes[0]
        s = min_bad_stopping_set_containing(small_tornado, d, max_size=8)
        assert s is not None
        assert d in s
        assert is_stopping_set(small_tornado, s)


class TestFirstFailure:
    def test_striped_is_one(self):
        assert first_failure(striped_graph(8), limit=3) == 1

    def test_mirrored_is_two(self):
        assert first_failure(mirrored_graph(8), limit=3) == 2

    def test_none_within_limit(self, graph3):
        assert first_failure(graph3, limit=4) is None

    def test_catalog_graph_is_five(self, graph3):
        assert first_failure(graph3, limit=5) == 5


class TestCounting:
    def test_no_sets_no_failures(self):
        assert count_failing_sets(10, 3, []) == 0

    def test_single_set(self):
        # k-sets containing a fixed 2-set: C(n-2, k-2)
        assert count_failing_sets(10, 4, [frozenset({1, 2})]) == comb(8, 2)

    def test_overlapping_sets_inclusion_exclusion(self):
        sets = [frozenset({0, 1}), frozenset({1, 2})]
        # |A| + |B| - |A and B| at k=3, n=6:
        expect = comb(4, 1) + comb(4, 1) - comb(3, 0)
        assert count_failing_sets(6, 3, sets) == expect

    def test_disjoint_fast_path_matches_recursion(self):
        sets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})]
        # brute-force reference
        n, k = 10, 4
        brute = sum(
            1
            for combo in itertools.combinations(range(n), k)
            if any(s <= set(combo) for s in sets)
        )
        assert count_failing_sets(n, k, sets) == brute

    def test_striped_graph_counts(self):
        g = striped_graph(6)
        counts = failing_set_counts(g, max_k=3)
        # any loss is fatal: all k-sets fail
        for k in (1, 2, 3):
            assert counts[k] == (comb(6, k), comb(6, k))

    def test_mirror_counts_match_closed_form(self):
        g = mirrored_graph(6)
        counts = failing_set_counts(g, max_k=4)
        n = 12
        for k in (1, 2, 3, 4):
            surviving = comb(6, k) * 2**k if k <= 6 else 0
            assert counts[k] == (comb(n, k) - surviving, comb(n, k))

    def test_budget_guard_raises(self):
        sets = [frozenset({i}) for i in range(60)]
        with pytest.raises(CountBudgetExceeded):
            count_failing_sets(
                96, 5, sets + [frozenset({0, 1})], max_terms=10
            )

    def test_counts_ignore_oversized_sets(self):
        sets = [frozenset({0, 1, 2, 3, 4})]
        assert count_failing_sets(10, 3, sets) == 0


class TestExhaustiveAgreement:
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_bnb_equals_brute_force_small_graphs(self, seed):
        g = tornado_graph(16, seed=seed)
        minimal = minimal_bad_stopping_sets(g, max_size=4)
        for k in (2, 3, 4):
            brute = exhaustive_failing_sets(g, k)
            counted = count_failing_sets(g.num_nodes, k, minimal)
            assert len(brute) == counted

    def test_exhaustive_on_catalog_graph_k3(self, graph3):
        # Adjusted graph tolerates any 3 losses: zero failing 3-sets.
        assert exhaustive_failing_sets(graph3, 3) == []


class TestAnalyzeWorstCase:
    def test_report_fields(self, small_tornado):
        rep = analyze_worst_case(small_tornado, max_k=4)
        assert rep.graph_name == small_tornado.name
        assert set(rep.failing_counts) == {1, 2, 3, 4}
        for k, (fails, total) in rep.failing_counts.items():
            assert total == comb(small_tornado.num_nodes, k)
            assert 0 <= fails <= total

    def test_failing_fraction(self, small_tornado):
        rep = analyze_worst_case(small_tornado, max_k=4)
        for k in rep.failing_counts:
            fails, total = rep.failing_counts[k]
            assert rep.failing_fraction(k) == pytest.approx(fails / total)

    def test_describe_mentions_first_failure(self, small_tornado):
        rep = analyze_worst_case(small_tornado, max_k=4)
        assert "first failure" in rep.describe()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 400), k=st.integers(1, 3))
def test_count_matches_brute_force_property(seed, k):
    """Property: inclusion-exclusion equals brute force on small graphs."""
    g = tornado_graph(16, seed=seed)
    minimal = minimal_bad_stopping_sets(g, max_size=k)
    dec = PeelingDecoder(g)
    brute = sum(
        1
        for combo in itertools.combinations(range(g.num_nodes), k)
        if not dec.is_recoverable(combo)
    )
    assert count_failing_sets(g.num_nodes, k, minimal) == brute
