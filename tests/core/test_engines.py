"""Cross-engine decode agreement, packing helpers, engine selection.

The bitset engine (:mod:`repro.core.bitdecoder`) must be
indistinguishable from the matmul engine and the scalar decoder on
every erasure pattern — the matmul engine stays alive precisely to be
this differential-testing oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.decoder as decoder_module
from repro.core import (
    DECODE_ENGINES,
    BatchPeelingDecoder,
    BitsetBatchDecoder,
    EngineUnsupportedError,
    PeelingDecoder,
    SparseBitsetDecoder,
    make_batch_decoder,
    pack_cases,
    packed_random_loss_masks,
    resolve_engine,
    tornado_graph,
    unpack_cases,
)
from repro.core.bitdecoder import missing_sets_to_unknown
from repro.core.decoder import make_batch_decoder_from_matrix
from repro.sim.montecarlo import _random_loss_masks


def random_small_graphs():
    """~50 random small cascades spanning sizes and degree mixes."""
    graphs = []
    for num_data in (8, 12, 16, 24):
        for seed in range(13):
            graphs.append(
                tornado_graph(
                    num_data, seed=seed, min_final_lefts=num_data // 2
                )
            )
    return graphs[:50]


class TestEngineAgreement:
    def test_property_four_way_agreement(self):
        """Scalar, matmul, bitset, sparse agree case-for-case, ~50 graphs."""
        rng = np.random.default_rng(2024)
        for graph in random_small_graphs():
            n = graph.num_nodes
            scalar = PeelingDecoder(graph)
            matmul = BatchPeelingDecoder(graph)
            bitset = BitsetBatchDecoder(graph)
            sparse = SparseBitsetDecoder(graph)
            k = int(rng.integers(1, n))
            masks = _random_loss_masks(n, k, 64, rng)
            # Edge rows: none lost, all lost.
            masks[0] = False
            masks[1] = True
            ok_mat = matmul.decode_batch(masks)
            ok_bit = bitset.decode_batch(masks)
            ok_sp = sparse.decode_batch(masks)
            assert np.array_equal(ok_mat, ok_bit), graph.name
            assert np.array_equal(ok_mat, ok_sp), graph.name
            assert ok_mat[0] and not ok_mat[1]
            for row in range(0, 64, 7):
                assert ok_mat[row] == scalar.is_recoverable(
                    np.flatnonzero(masks[row])
                ), (graph.name, row)

    def test_duplicate_nodes_in_missing_sets(self, small_tornado):
        sets = [[0, 0, 1], [3, 3, 3], [], [5, 4, 5, 4]]
        mat = BatchPeelingDecoder(small_tornado).decode_missing_sets(sets)
        bit = BitsetBatchDecoder(small_tornado).decode_missing_sets(sets)
        sp = SparseBitsetDecoder(small_tornado).decode_missing_sets(sets)
        assert np.array_equal(mat, bit)
        assert np.array_equal(mat, sp)
        assert mat[2]  # nothing lost

    def test_empty_batch(self, small_tornado):
        for engine in DECODE_ENGINES:
            dec = make_batch_decoder(small_tornado, engine)
            out = dec.decode_batch(
                np.zeros((0, small_tornado.num_nodes), dtype=bool)
            )
            assert out.shape == (0,)

    def test_shape_validation(self, small_tornado):
        for engine in DECODE_ENGINES:
            dec = make_batch_decoder(small_tornado, engine)
            with pytest.raises(ValueError):
                dec.decode_batch(np.zeros((4, 7), dtype=bool))

    def test_from_matrix_agreement(self):
        """Raw-matrix construction (federation path) agrees too."""
        rng = np.random.default_rng(5)
        num_nodes, num_rel = 20, 14
        membership = (rng.random((num_rel, num_nodes)) < 0.25).astype(
            np.float32
        )
        membership[0] = 0.0  # all-zero row must be tolerated
        membership[1] = 0.0
        membership[1, 3] = 1.0  # single-member relation pins node 3
        data_nodes = list(range(10))
        mat = BatchPeelingDecoder.from_matrix(
            membership, data_nodes, num_nodes
        )
        bit = BitsetBatchDecoder.from_matrix(
            membership, data_nodes, num_nodes
        )
        sp = SparseBitsetDecoder.from_matrix(
            membership, data_nodes, num_nodes
        )
        masks = rng.random((256, num_nodes)) < 0.4
        assert np.array_equal(
            mat.decode_batch(masks), bit.decode_batch(masks)
        )
        assert np.array_equal(
            mat.decode_batch(masks), sp.decode_batch(masks)
        )

    def test_decode_packed_trims_pad_lanes(self, graph3):
        rng = np.random.default_rng(9)
        bit = BitsetBatchDecoder(graph3)
        sp = SparseBitsetDecoder(graph3)
        mat = BatchPeelingDecoder(graph3)
        for batch in (1, 63, 64, 65, 130):
            masks = _random_loss_masks(graph3.num_nodes, 30, batch, rng)
            expected = mat.decode_batch(masks)
            out = bit.decode_packed(pack_cases(masks), batch)
            assert out.shape == (batch,)
            assert np.array_equal(out, expected)
            out_sp = sp.decode_packed(pack_cases(masks), batch)
            assert out_sp.shape == (batch,)
            assert np.array_equal(out_sp, expected)


class TestPackingHelpers:
    def test_pack_unpack_roundtrip(self, rng):
        for batch in (1, 2, 63, 64, 65, 200):
            masks = rng.random((batch, 17)) < 0.3
            packed = pack_cases(masks)
            assert packed.shape == (17, (batch + 63) // 64)
            assert np.array_equal(unpack_cases(packed, batch), masks)

    def test_packed_generator_matches_bool_generator(self):
        """Same seed → identical masks and identical downstream state."""
        for k in (1, 5, 42, 96):
            r1 = np.random.default_rng(77)
            r2 = np.random.default_rng(77)
            packed = packed_random_loss_masks(96, k, 300, r1)
            masks = _random_loss_masks(96, k, 300, r2)
            assert np.array_equal(packed, pack_cases(masks)), k
            # The generators consumed identical draws.
            assert r1.random() == r2.random()

    def test_packed_generator_exact_k(self):
        rng = np.random.default_rng(3)
        packed = packed_random_loss_masks(40, 7, 130, rng)
        masks = unpack_cases(packed, 130)
        assert (masks.sum(axis=1) == 7).all()

    def test_packed_generator_k_zero(self):
        rng = np.random.default_rng(3)
        packed = packed_random_loss_masks(40, 0, 100, rng)
        assert packed.shape == (40, 2)
        assert not packed.any()

    def test_missing_sets_to_unknown_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            missing_sets_to_unknown([[0, 99]], 10)
        with pytest.raises(ValueError):
            missing_sets_to_unknown([[-1]], 10)


class TestEngineSelection:
    def test_default_is_bitset(self, monkeypatch):
        monkeypatch.delenv("REPRO_DECODE_ENGINE", raising=False)
        assert resolve_engine() == "bitset"
        assert resolve_engine("auto") == "bitset"
        assert resolve_engine(None) == "bitset"

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "matmul")
        assert resolve_engine("auto") == "matmul"
        assert resolve_engine("bitset") == "bitset"  # explicit wins

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown decode engine"):
            resolve_engine("gpu")
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "typo")
        with pytest.raises(ValueError, match="unknown decode engine"):
            resolve_engine("auto")

    def test_make_batch_decoder_classes(self, small_tornado, monkeypatch):
        monkeypatch.delenv("REPRO_DECODE_ENGINE", raising=False)
        assert isinstance(
            make_batch_decoder(small_tornado), BitsetBatchDecoder
        )
        assert isinstance(
            make_batch_decoder(small_tornado, "matmul"),
            BatchPeelingDecoder,
        )
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "matmul")
        assert isinstance(
            make_batch_decoder(small_tornado), BatchPeelingDecoder
        )

    def test_engine_attribute(self, small_tornado):
        assert make_batch_decoder(small_tornado, "bitset").engine == "bitset"
        assert make_batch_decoder(small_tornado, "matmul").engine == "matmul"
        assert make_batch_decoder(small_tornado, "sparse").engine == "sparse"

    def test_from_matrix_selector(self, monkeypatch):
        monkeypatch.delenv("REPRO_DECODE_ENGINE", raising=False)
        membership = np.eye(4, dtype=np.float32)
        dec = make_batch_decoder_from_matrix(membership, [0, 1], 4)
        assert isinstance(dec, BitsetBatchDecoder)
        dec = make_batch_decoder_from_matrix(
            membership, [0, 1], 4, engine="matmul"
        )
        assert isinstance(dec, BatchPeelingDecoder)
        dec = make_batch_decoder_from_matrix(
            membership, [0, 1], 4, engine="sparse"
        )
        assert isinstance(dec, SparseBitsetDecoder)

    def test_auto_picks_sparse_above_cutoff(
        self, monkeypatch, small_tornado
    ):
        """The size heuristic flips exactly at _SPARSE_AUTO_MIN_NODES."""
        monkeypatch.delenv("REPRO_DECODE_ENGINE", raising=False)
        n = small_tornado.num_nodes  # 32
        monkeypatch.setattr(decoder_module, "_SPARSE_AUTO_MIN_NODES", n + 1)
        assert resolve_engine("auto", num_nodes=n) == "bitset"
        assert isinstance(
            make_batch_decoder(small_tornado), BitsetBatchDecoder
        )
        monkeypatch.setattr(decoder_module, "_SPARSE_AUTO_MIN_NODES", n)
        assert resolve_engine("auto", num_nodes=n) == "sparse"
        assert isinstance(
            make_batch_decoder(small_tornado), SparseBitsetDecoder
        )
        # Without a size hint, auto keeps the bitset default.
        assert resolve_engine("auto") == "bitset"
        # Env override beats the size heuristic.
        monkeypatch.setenv("REPRO_DECODE_ENGINE", "bitset")
        assert resolve_engine("auto", num_nodes=n) == "bitset"


class TestMatmulPrecisionGuard:
    def test_guard_raises_past_float32_ids(self, monkeypatch, small_tornado):
        monkeypatch.setattr(decoder_module, "_MATMUL_MAX_NODES", 16)
        with pytest.raises(EngineUnsupportedError, match="bitset"):
            BatchPeelingDecoder(small_tornado)  # 32 nodes >= mocked 16

    def test_guard_covers_from_matrix(self, monkeypatch):
        monkeypatch.setattr(decoder_module, "_MATMUL_MAX_NODES", 4)
        with pytest.raises(EngineUnsupportedError, match="float32"):
            BatchPeelingDecoder.from_matrix(
                np.ones((1, 8), dtype=np.float32), [0], 8
            )

    def test_guard_error_is_a_value_error(self, monkeypatch, small_tornado):
        # Pre-existing callers catch ValueError; the subclass keeps them
        # working.
        monkeypatch.setattr(decoder_module, "_MATMUL_MAX_NODES", 16)
        with pytest.raises(ValueError):
            BatchPeelingDecoder(small_tornado)

    def test_bitset_unaffected(self, monkeypatch, small_tornado):
        monkeypatch.setattr(decoder_module, "_MATMUL_MAX_NODES", 16)
        dec = BitsetBatchDecoder(small_tornado)
        assert dec.decode_batch(
            np.zeros((2, small_tornado.num_nodes), dtype=bool)
        ).all()

    def test_threshold_boundary(self, monkeypatch, small_tornado):
        # Exactly at num_nodes the guard fires; one above it does not.
        monkeypatch.setattr(
            decoder_module, "_MATMUL_MAX_NODES", small_tornado.num_nodes
        )
        with pytest.raises(ValueError):
            BatchPeelingDecoder(small_tornado)
        monkeypatch.setattr(
            decoder_module,
            "_MATMUL_MAX_NODES",
            small_tornado.num_nodes + 1,
        )
        BatchPeelingDecoder(small_tornado)


class TestEngineMetrics:
    def test_per_engine_case_counters(self, small_tornado):
        from repro.obs import MetricsRegistry, capture

        masks = np.zeros((10, small_tornado.num_nodes), dtype=bool)
        with capture(MetricsRegistry()) as reg:
            BitsetBatchDecoder(small_tornado).decode_batch(masks)
            BatchPeelingDecoder(small_tornado).decode_batch(masks)
            SparseBitsetDecoder(small_tornado).decode_batch(masks)
        counters = reg.snapshot()["counters"]
        assert counters["decoder.cases.bitset"] == 10
        assert counters["decoder.cases.matmul"] == 10
        assert counters["decoder.cases.sparse"] == 10
        assert counters["decoder.cases"] == 30
