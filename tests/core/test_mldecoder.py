"""Tests for the GF(2) maximum-likelihood decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Constraint,
    ErasureGraph,
    MLDecoder,
    PeelingDecoder,
    TornadoCodec,
    tornado_graph,
)


class TestAnalyze:
    def test_nothing_missing(self, tiny_graph):
        rep = MLDecoder(tiny_graph).analyze([])
        assert rep.success
        assert rep.determined == frozenset()

    def test_single_loss_determined(self, tiny_graph):
        rep = MLDecoder(tiny_graph).analyze([0])
        assert rep.success
        assert rep.determined == frozenset({0})

    def test_dominates_peeling(self, small_tornado, rng):
        """ML recovers everything peeling recovers (and maybe more)."""
        ml = MLDecoder(small_tornado)
        peel = PeelingDecoder(small_tornado)
        n = small_tornado.num_nodes
        for _ in range(300):
            k = int(rng.integers(1, n))
            missing = rng.choice(n, size=k, replace=False)
            if peel.is_recoverable(missing):
                assert ml.is_recoverable(missing)

    def test_ml_beats_peeling_on_known_gap_case(self):
        """A 2-cycle stalls peeling but has full GF(2) rank.

        Constraints: c3 = 0^1, c4 = 0^1^2.  Losing {0, 1} leaves both
        constraints with two unknowns (peeling stuck), yet the system
        x0^x1 = c3, x0^x1 = c4^x2 ... is rank-deficient; instead use
        three constraints where elimination succeeds:
        c3 = 0^1, c4 = 1^2, c5 = 0^2 and lose {0, 1, 2}: each constraint
        has two unknowns (stuck), and the 3x3 system has rank 2 over
        GF(2) (the rows sum to zero) — so ML also fails.  The true gap
        needs 4 data nodes: c = 0^1, 1^2, 2^3, 0^3 plus d = 0^1^2^3:
        losing {0,1,2,3} stalls peeling (every constraint has >= 2
        unknown) but rank is only 3 — still deficient.  Genuine gaps
        need asymmetric overlap: c3 = 0^1, c4 = 0^1^2 with loss {0,1}:
        XORing gives x2-free equation pair determining nothing alone;
        adding c5 = 0^2 makes x0,x1,x2 solvable while peeling stays
        stuck (every constraint >= 2 unknowns among {0,1,2}? c5 has
        unknowns {0, 2}: 2 unknowns; c3 {0,1}: 2; c4 {0,1,2}: 3 — stuck.
        Rank of [[1,1,0],[1,1,1],[1,0,1]] over GF(2) is 3 => ML wins.)
        """
        g = ErasureGraph(
            num_nodes=6,
            data_nodes=(0, 1, 2),
            constraints=(
                Constraint(check=3, lefts=(0, 1)),
                Constraint(check=4, lefts=(0, 1, 2)),
                Constraint(check=5, lefts=(0, 2)),
            ),
        )
        missing = [0, 1, 2]
        assert not PeelingDecoder(g).is_recoverable(missing)
        assert MLDecoder(g).is_recoverable(missing)

    def test_undetermined_reported(self):
        g = ErasureGraph(
            num_nodes=4,
            data_nodes=(0, 1),
            constraints=(
                Constraint(check=2, lefts=(0, 1)),
                Constraint(check=3, lefts=(0, 1)),
            ),
        )
        rep = MLDecoder(g).analyze([0, 1])
        assert not rep.success
        assert rep.undetermined >= frozenset({0, 1})

    def test_check_only_loss_always_recoverable(self, small_tornado):
        ml = MLDecoder(small_tornado)
        checks = list(small_tornado.check_nodes)
        assert ml.is_recoverable(checks)


class TestValueDecode:
    def test_matches_codec_roundtrip(self, small_tornado, rng):
        codec = TornadoCodec(small_tornado, block_size=16)
        data = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        blocks = codec.encode_blocks(data)
        ml = MLDecoder(small_tornado)
        present = np.ones(small_tornado.num_nodes, dtype=bool)
        present[[0, 3, 17, 25]] = False
        out = ml.decode_blocks(blocks, present)
        np.testing.assert_array_equal(out, data)

    def test_recovers_where_peeling_fails(self, rng):
        g = ErasureGraph(
            num_nodes=6,
            data_nodes=(0, 1, 2),
            constraints=(
                Constraint(check=3, lefts=(0, 1)),
                Constraint(check=4, lefts=(0, 1, 2)),
                Constraint(check=5, lefts=(0, 2)),
            ),
        )
        codec = TornadoCodec(g, block_size=8)
        data = rng.integers(0, 256, (3, 8), dtype=np.uint8)
        blocks = codec.encode_blocks(data)
        present = np.ones(6, dtype=bool)
        present[[0, 1, 2]] = False
        out = MLDecoder(g).decode_blocks(blocks, present)
        np.testing.assert_array_equal(out, data)

    def test_raises_on_undetermined_data(self, rng):
        g = ErasureGraph(
            num_nodes=4,
            data_nodes=(0, 1),
            constraints=(
                Constraint(check=2, lefts=(0, 1)),
                Constraint(check=3, lefts=(0, 1)),
            ),
        )
        codec = TornadoCodec(g, block_size=8)
        blocks = codec.encode_blocks(
            rng.integers(0, 256, (2, 8), dtype=np.uint8)
        )
        present = np.array([False, False, True, True])
        with pytest.raises(ValueError, match="undetermined"):
            MLDecoder(g).decode_blocks(blocks, present)

    def test_no_loss_passthrough(self, small_tornado, rng):
        codec = TornadoCodec(small_tornado, block_size=8)
        data = rng.integers(0, 256, (16, 8), dtype=np.uint8)
        blocks = codec.encode_blocks(data)
        out = MLDecoder(small_tornado).decode_blocks(
            blocks, np.ones(small_tornado.num_nodes, dtype=bool)
        )
        np.testing.assert_array_equal(out, data)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), data=st.data())
def test_ml_value_decode_property(seed, data):
    """Whenever analyze() says success, value decode must be exact."""
    g = tornado_graph(16, seed=seed % 5)
    rng = np.random.default_rng(seed)
    codec = TornadoCodec(g, block_size=8)
    payload = rng.integers(0, 256, (16, 8), dtype=np.uint8)
    blocks = codec.encode_blocks(payload)
    k = data.draw(st.integers(0, 20))
    missing = rng.choice(g.num_nodes, size=k, replace=False)
    present = np.ones(g.num_nodes, dtype=bool)
    present[missing] = False
    ml = MLDecoder(g)
    if ml.analyze(missing).success:
        out = ml.decode_blocks(blocks, present)
        np.testing.assert_array_equal(out, payload)
