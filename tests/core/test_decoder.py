"""Unit and property tests for scalar and batch peeling decoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPeelingDecoder,
    Constraint,
    ErasureGraph,
    PeelingDecoder,
    is_stopping_set,
    tornado_graph,
)
from repro.graphs import mirrored_graph, striped_graph


class TestScalarDecoder:
    def test_nothing_missing_succeeds(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        result = dec.decode([])
        assert result.success
        assert result.steps == ()
        assert result.residual == frozenset()

    def test_single_data_loss_recovers_via_check(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        result = dec.decode([0])
        assert result.success
        assert result.recovered == (0,)

    def test_check_recomputed_from_lefts(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        result = dec.decode([3, 4, 5])
        assert result.success  # data all present; checks recomputable
        assert set(result.recovered) == {3, 4, 5}

    def test_cascaded_recovery_order_is_usable(self, tiny_graph):
        # Losing 0 and 3: 0 must come back through check 5 first,
        # then 3 is recomputable.
        dec = PeelingDecoder(tiny_graph)
        result = dec.decode([0, 3])
        assert result.success
        assert set(result.recovered) == {0, 3}
        # Each step's constraint must have had its other members known.
        known = {n for n in range(6)} - {0, 3}
        for ci, node in result.steps:
            others = [
                m
                for m in tiny_graph.constraints[ci].members()
                if m != node
            ]
            assert all(m in known for m in others)
            known.add(node)

    def test_unrecoverable_set_reports_residual(self, tiny_graph):
        # Losing all of 0,1,2 and 3,4,5's checks is clearly fatal; a
        # sharper case: lose 0,1 and their only fresh source 3 plus 5.
        dec = PeelingDecoder(tiny_graph)
        result = dec.decode([0, 1, 3, 5])
        assert not result.success
        assert result.residual  # non-empty stuck set
        assert is_stopping_set(tiny_graph, result.residual)

    def test_is_recoverable_matches_decode(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        import itertools

        for r in range(7):
            for combo in itertools.combinations(range(6), r):
                assert dec.is_recoverable(combo) == dec.decode(combo).success

    def test_is_recoverable_resets_state_between_calls(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        assert not dec.is_recoverable([0, 1, 3, 5])
        # A subsequent easy case must not be polluted by the failure.
        assert dec.is_recoverable([0])
        assert not dec.is_recoverable([0, 1, 3, 5])

    def test_duplicate_missing_ids_are_tolerated(self, tiny_graph):
        dec = PeelingDecoder(tiny_graph)
        assert dec.is_recoverable([0, 0, 0])

    def test_mirror_decoding(self):
        g = mirrored_graph(4)
        dec = PeelingDecoder(g)
        assert dec.is_recoverable([0, 5])  # different pairs
        assert not dec.is_recoverable([0, 4])  # whole pair lost

    def test_striped_graph_fails_on_any_loss(self):
        g = striped_graph(8)
        dec = PeelingDecoder(g)
        assert dec.is_recoverable([])
        assert not dec.is_recoverable([3])


class TestResidualProperties:
    def test_residual_is_stopping_set(self, small_tornado, rng):
        dec = PeelingDecoder(small_tornado)
        for _ in range(200):
            k = int(rng.integers(1, small_tornado.num_nodes))
            missing = rng.choice(
                small_tornado.num_nodes, size=k, replace=False
            )
            res = dec.decode(missing)
            assert is_stopping_set(small_tornado, res.residual)
            # success iff no data node stuck
            stuck_data = set(res.residual) & set(small_tornado.data_nodes)
            assert res.success == (not stuck_data)

    def test_monotonicity_losing_more_never_helps(self, small_tornado, rng):
        dec = PeelingDecoder(small_tornado)
        n = small_tornado.num_nodes
        for _ in range(100):
            k = int(rng.integers(1, n - 1))
            base = set(rng.choice(n, size=k, replace=False).tolist())
            extra = int(rng.integers(0, n))
            if dec.is_recoverable(base | {extra}):
                assert dec.is_recoverable(base)


class TestBatchDecoder:
    def test_shape_validation(self, tiny_graph):
        batch = BatchPeelingDecoder(tiny_graph)
        with pytest.raises(ValueError):
            batch.decode_batch(np.zeros((4, 5), dtype=bool))

    def test_empty_pattern_row_succeeds(self, tiny_graph):
        batch = BatchPeelingDecoder(tiny_graph)
        ok = batch.decode_batch(np.zeros((3, 6), dtype=bool))
        assert ok.all()

    def test_all_lost_row_fails(self, tiny_graph):
        batch = BatchPeelingDecoder(tiny_graph)
        ok = batch.decode_batch(np.ones((1, 6), dtype=bool))
        assert not ok.any()

    def test_decode_missing_sets_wrapper(self, tiny_graph):
        batch = BatchPeelingDecoder(tiny_graph)
        ok = batch.decode_missing_sets([[0], [0, 1, 3, 5], []])
        np.testing.assert_array_equal(ok, [True, False, True])

    def test_input_matrix_not_mutated(self, small_tornado, rng):
        batch = BatchPeelingDecoder(small_tornado)
        unknown = rng.random((50, small_tornado.num_nodes)) < 0.3
        copy = unknown.copy()
        batch.decode_batch(unknown)
        np.testing.assert_array_equal(unknown, copy)

    @pytest.mark.parametrize("loss_rate", [0.05, 0.2, 0.4, 0.6])
    def test_batch_agrees_with_scalar(self, small_tornado, rng, loss_rate):
        scalar = PeelingDecoder(small_tornado)
        batch = BatchPeelingDecoder(small_tornado)
        unknown = rng.random((400, small_tornado.num_nodes)) < loss_rate
        ok_batch = batch.decode_batch(unknown)
        ok_scalar = np.array(
            [scalar.is_recoverable(np.flatnonzero(row)) for row in unknown]
        )
        np.testing.assert_array_equal(ok_batch, ok_scalar)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), data=st.data())
def test_batch_scalar_equivalence_property(seed, data):
    """Hypothesis: batch and scalar decoders agree on arbitrary patterns."""
    g = tornado_graph(16, seed=seed % 7)  # few graph shapes, many patterns
    pattern = data.draw(
        st.lists(
            st.booleans(), min_size=g.num_nodes, max_size=g.num_nodes
        )
    )
    unknown = np.array([pattern], dtype=bool)
    scalar = PeelingDecoder(g).is_recoverable(np.flatnonzero(unknown[0]))
    batch = BatchPeelingDecoder(g).decode_batch(unknown)[0]
    assert scalar == bool(batch)
