"""Tests for the §3.3 feedback adjustment procedure."""

import pytest

from repro.core import (
    GraphValidationError,
    adjust_graph,
    first_failure,
    generate_certified,
    minimal_bad_stopping_sets,
    rewire,
)


class TestRewire:
    def test_moves_edge_between_checks(self, small_tornado):
        g = small_tornado
        con = next(c for c in g.constraints if len(c.lefts) >= 3)
        left = con.lefts[0]
        target = next(
            c
            for c in g.constraints
            if c.check != con.check and left not in c.lefts
        )
        g2 = rewire(g, left, con.check, target.check)
        new_old = next(
            c for c in g2.constraints if c.check == con.check
        )
        new_new = next(
            c for c in g2.constraints if c.check == target.check
        )
        assert left not in new_old.lefts
        assert left in new_new.lefts
        assert g2.num_edges == g.num_edges

    def test_rejects_unknown_check(self, small_tornado):
        with pytest.raises(GraphValidationError, match="unknown check"):
            rewire(small_tornado, 0, 9999, 16)

    def test_rejects_left_not_in_old(self, small_tornado):
        g = small_tornado
        con = g.constraints[0]
        absent = next(
            d for d in g.data_nodes if d not in con.lefts
        )
        other = g.constraints[1]
        with pytest.raises(GraphValidationError, match="not a left"):
            rewire(g, absent, con.check, other.check)

    def test_rejects_duplicate_edge(self, small_tornado):
        g = small_tornado
        con = next(c for c in g.constraints if len(c.lefts) >= 3)
        left = con.lefts[0]
        # find another constraint already containing `left`
        dup = next(
            c
            for c in g.constraints
            if c.check != con.check and left in c.lefts
        )
        with pytest.raises(GraphValidationError, match="already feeds"):
            rewire(g, left, con.check, dup.check)

    def test_rejects_draining_a_check_below_two_lefts(self, small_tornado):
        g = small_tornado
        con = next(c for c in g.constraints if len(c.lefts) == 2)
        other = next(
            c
            for c in g.constraints
            if c.check != con.check and con.lefts[0] not in c.lefts
        )
        with pytest.raises(GraphValidationError, match="below two lefts"):
            rewire(g, con.lefts[0], con.check, other.check)


class TestAdjustGraph:
    @pytest.mark.parametrize("seed", [32, 69, 99])
    def test_certified_seeds_reach_first_failure_five(self, seed):
        report = generate_certified(48, seed=seed)
        assert first_failure(report.graph, limit=4) == 4
        result = adjust_graph(report.graph, target_first_failure=5)
        assert result.achieved_target
        assert result.residual_sets == ()
        assert first_failure(result.graph, limit=5) == 5

    def test_steps_record_improvement(self):
        report = generate_certified(48, seed=32)
        result = adjust_graph(report.graph, target_first_failure=5)
        assert result.steps  # at least one rewiring happened
        for step in result.steps:
            assert (
                step.first_failure_after,
                -step.sets_after,
            ) > (step.first_failure_before, -step.sets_before)

    def test_adjusted_name_suffix(self):
        report = generate_certified(48, seed=32)
        result = adjust_graph(report.graph, target_first_failure=5)
        assert result.graph.name.endswith("-adjusted")

    def test_noop_when_already_at_target(self, graph3):
        result = adjust_graph(graph3, target_first_failure=5)
        assert result.achieved_target
        assert result.steps == ()
        assert result.graph.name == graph3.name

    def test_adjustment_never_worsens_failure_sets(self):
        """Accepted graph must dominate the input on (ff, -set count)."""
        report = generate_certified(48, seed=69)
        before = minimal_bad_stopping_sets(report.graph, max_size=4)
        result = adjust_graph(report.graph, target_first_failure=5)
        after = minimal_bad_stopping_sets(result.graph, max_size=4)
        assert len(after) < len(before) or not after

    def test_max_rounds_zero_returns_input(self):
        report = generate_certified(48, seed=32)
        result = adjust_graph(
            report.graph, target_first_failure=5, max_rounds=0
        )
        assert not result.achieved_target
        assert result.graph.constraints == report.graph.constraints
