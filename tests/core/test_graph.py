"""Unit tests for the erasure-graph data model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Constraint,
    ErasureGraph,
    GraphValidationError,
    tornado_graph,
)
from repro.core.graph import edge_list


class TestConstraint:
    def test_members_puts_check_first(self):
        con = Constraint(check=9, lefts=(1, 4, 7))
        assert con.members() == (9, 1, 4, 7)

    def test_len_counts_check_and_lefts(self):
        assert len(Constraint(check=3, lefts=(0, 1))) == 3

    def test_single_left_constraint_is_valid(self):
        # Mirror pairs are one-left constraints.
        assert Constraint(check=1, lefts=(0,)).members() == (1, 0)


class TestValidation:
    def test_valid_graph_constructs(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_data == 3
        assert tiny_graph.num_checks == 3

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphValidationError):
            ErasureGraph(num_nodes=0, data_nodes=(), constraints=())

    def test_rejects_no_data_nodes(self):
        with pytest.raises(GraphValidationError):
            ErasureGraph(num_nodes=2, data_nodes=(), constraints=())

    def test_rejects_data_node_out_of_range(self):
        with pytest.raises(GraphValidationError):
            ErasureGraph(num_nodes=2, data_nodes=(0, 5), constraints=())

    def test_rejects_check_without_constraint(self):
        # Node 1 is not data and has no defining constraint.
        with pytest.raises(GraphValidationError, match="without defining"):
            ErasureGraph(num_nodes=2, data_nodes=(0,), constraints=())

    def test_rejects_data_node_used_as_check(self):
        with pytest.raises(GraphValidationError, match="as check"):
            ErasureGraph(
                num_nodes=2,
                data_nodes=(0, 1),
                constraints=(Constraint(check=1, lefts=(0,)),),
            )

    def test_rejects_duplicate_check_definition(self):
        with pytest.raises(GraphValidationError):
            ErasureGraph(
                num_nodes=3,
                data_nodes=(0, 1),
                constraints=(
                    Constraint(check=2, lefts=(0,)),
                    Constraint(check=2, lefts=(1,)),
                ),
            )

    def test_rejects_duplicate_lefts(self):
        with pytest.raises(GraphValidationError, match="duplicate left"):
            ErasureGraph(
                num_nodes=2,
                data_nodes=(0,),
                constraints=(Constraint(check=1, lefts=(0, 0)),),
            )

    def test_rejects_self_referencing_check(self):
        with pytest.raises(GraphValidationError):
            ErasureGraph(
                num_nodes=2,
                data_nodes=(0,),
                constraints=(Constraint(check=1, lefts=(0, 1)),),
            )

    def test_rejects_empty_constraint(self):
        with pytest.raises(GraphValidationError, match="no lefts"):
            ErasureGraph(
                num_nodes=2,
                data_nodes=(0,),
                constraints=(Constraint(check=1, lefts=()),),
            )

    def test_rejects_forward_reference_across_levels(self):
        # Check 3's constraint uses check 4 before 4's level.
        with pytest.raises(GraphValidationError, match="undefined lefts"):
            ErasureGraph(
                num_nodes=5,
                data_nodes=(0, 1, 2),
                constraints=(
                    Constraint(check=3, lefts=(0, 4)),
                    Constraint(check=4, lefts=(1, 2)),
                ),
                levels=((0,), (1,)),
            )

    def test_levels_must_partition_constraints(self):
        with pytest.raises(GraphValidationError, match="partition"):
            ErasureGraph(
                num_nodes=4,
                data_nodes=(0, 1),
                constraints=(
                    Constraint(check=2, lefts=(0,)),
                    Constraint(check=3, lefts=(1,)),
                ),
                levels=((0,),),
            )


class TestDerivedViews:
    def test_check_nodes_complement_data(self, tiny_graph):
        assert tiny_graph.check_nodes == (3, 4, 5)

    def test_num_edges(self, tiny_graph):
        assert tiny_graph.num_edges == 2 + 2 + 3

    def test_average_left_degree(self, tiny_graph):
        # node0 in 2 constraints, node1 in 3, node2 in 2 => mean 7/3
        assert tiny_graph.average_left_degree() == pytest.approx(7 / 3)

    def test_default_level_covers_all_constraints(self, tiny_graph):
        assert tiny_graph.levels == ((0, 1, 2),)

    def test_node_constraints_incidence(self, tiny_graph):
        table = tiny_graph.node_constraints()
        assert table[1] == [0, 1, 2]
        assert table[3] == [0]

    def test_membership_matrix_shape_and_content(self, tiny_graph):
        a = tiny_graph.membership_matrix()
        assert a.shape == (3, 6)
        assert a.sum() == tiny_graph.num_edges + len(tiny_graph.constraints)
        np.testing.assert_array_equal(
            a[0], np.array([1, 1, 0, 1, 0, 0], dtype=np.float32)
        )

    def test_edge_list(self, tiny_graph):
        edges = edge_list(tiny_graph)
        assert (0, 3) in edges and (2, 5) in edges
        assert len(edges) == tiny_graph.num_edges

    def test_iteration_yields_constraints(self, tiny_graph):
        assert list(tiny_graph) == list(tiny_graph.constraints)


class TestMutationByCopy:
    def test_with_constraints_replaces(self, tiny_graph):
        cons = list(tiny_graph.constraints)
        cons[0] = Constraint(check=3, lefts=(0, 2))
        g2 = tiny_graph.with_constraints(cons)
        assert g2.constraints[0].lefts == (0, 2)
        assert tiny_graph.constraints[0].lefts == (0, 1)  # original intact

    def test_with_constraints_requires_same_length(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            tiny_graph.with_constraints(tiny_graph.constraints[:2])

    def test_renamed(self, tiny_graph):
        assert tiny_graph.renamed("x").name == "x"
        assert tiny_graph.renamed("x").constraints == tiny_graph.constraints

    def test_graph_is_hashable(self, tiny_graph):
        assert hash(tiny_graph) == hash(tiny_graph.renamed("tiny"))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_tornado_graphs_always_validate(seed):
    """Construction + validation never disagree, for any seed."""
    g = tornado_graph(16, seed=seed)
    g.validate()
    assert g.num_nodes == 32
    assert g.num_checks == 16


@settings(max_examples=10, deadline=None)
@given(
    num_data=st.sampled_from([16, 24, 32, 48]),
    seed=st.integers(0, 500),
)
def test_cascade_check_count_equals_data_count(num_data, seed):
    """Rate-1/2 invariant: the shared-left finale makes checks == data."""
    g = tornado_graph(num_data, seed=seed)
    assert g.num_checks == num_data
    assert g.num_nodes == 2 * num_data
