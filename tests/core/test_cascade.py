"""Tests for cascade planning and Tornado graph construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CascadePlan,
    cascade_graph_from_degrees,
    plan_cascade,
    tornado_graph,
)
from repro.core.degree import EdgeDistribution


class TestPlanCascade:
    def test_paper_96_node_plan(self):
        plan = plan_cascade(48)
        assert plan.halving_layers == (24, 12, 6)
        assert plan.final_lefts == 6
        assert plan.final_group_size == 3
        assert plan.num_checks == 48
        assert plan.num_nodes == 96

    def test_smallest_paper_graph_32_nodes(self):
        plan = plan_cascade(16)
        assert plan.num_nodes == 32
        assert plan.final_group_size in (3, 4)

    def test_checks_always_equal_data(self):
        for n in (16, 24, 32, 48, 64, 96):
            assert plan_cascade(n).num_checks == n

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError):
            plan_cascade(3)

    def test_rejects_odd_final_layer(self):
        # 28 -> 14 -> 7 (odd, below nothing): stuck at odd layer.
        with pytest.raises(ValueError, match="even final layer"):
            plan_cascade(28, min_final_lefts=6)

    def test_min_final_lefts_controls_depth(self):
        deep = plan_cascade(48, min_final_lefts=6)
        shallow = plan_cascade(48, min_final_lefts=13)
        assert len(deep.halving_layers) > len(shallow.halving_layers)


class TestTornadoGraph:
    def test_paper_dimensions(self):
        g = tornado_graph(48, seed=0)
        assert g.num_nodes == 96
        assert g.num_data == 48
        assert len(g.constraints) == 48

    def test_levels_structure(self):
        g = tornado_graph(48, seed=0)
        # 3 halving levels + 1 shared-left finale
        assert len(g.levels) == 4
        assert len(g.levels[0]) == 24
        assert len(g.levels[-1]) == 6  # two groups of 3

    def test_deterministic_by_seed(self):
        assert tornado_graph(48, seed=9) == tornado_graph(48, seed=9)

    def test_different_seeds_differ(self):
        assert tornado_graph(48, seed=1) != tornado_graph(48, seed=2)

    def test_average_degree_near_paper(self):
        degs = [
            tornado_graph(48, seed=s).average_left_degree()
            for s in range(5)
        ]
        avg = sum(degs) / len(degs)
        assert 2.8 <= avg <= 4.2  # paper: ~3.6

    def test_final_groups_share_left_set(self):
        g = tornado_graph(48, seed=0)
        finale = [g.constraints[i] for i in g.levels[-1]]
        # Final lefts are the 6 nodes of the previous layer (84..89).
        prev_layer = {g.constraints[i].check for i in g.levels[-2]}
        for con in finale:
            assert set(con.lefts) <= prev_layer

    def test_every_left_covered_by_final_stage(self):
        g = tornado_graph(48, seed=0)
        finale = [g.constraints[i] for i in g.levels[-1]]
        prev_layer = {g.constraints[i].check for i in g.levels[-2]}
        covered = set()
        for con in finale:
            covered |= set(con.lefts)
        assert covered == prev_layer

    def test_custom_distribution(self):
        dist = EdgeDistribution(((3, 1.0),))
        g = tornado_graph(16, left_dist=dist, seed=1)
        assert g.num_nodes == 32

    def test_explicit_rng_equivalent_to_seed(self):
        import numpy as np

        g1 = tornado_graph(16, seed=5)
        g2 = tornado_graph(16, rng=np.random.default_rng(5))
        assert g1.constraints == g2.constraints


class TestFixedDegreeCascade:
    def test_dimensions_match_tornado(self):
        g = cascade_graph_from_degrees(48, 3, seed=0)
        assert g.num_nodes == 96
        assert len(g.levels) == 4

    def test_left_degree_is_fixed(self):
        g = cascade_graph_from_degrees(48, 3, seed=0)
        counts = [0] * 96
        level0 = [g.constraints[i] for i in g.levels[0]]
        for con in level0:
            for l in con.lefts:
                counts[l] += 1
        assert all(counts[d] == 3 for d in g.data_nodes)

    def test_degree_clamped_to_level_size(self):
        # degree 6 > 3 rights at the last halving level must still build
        g = cascade_graph_from_degrees(48, 6, seed=0)
        g.validate()

    def test_rejects_degree_below_two(self):
        with pytest.raises(ValueError):
            cascade_graph_from_degrees(48, 1, seed=0)


@settings(max_examples=20, deadline=None)
@given(
    num_data=st.sampled_from([16, 32, 48]),
    seed=st.integers(0, 300),
)
def test_level_encoding_order_sound(num_data, seed):
    """Every constraint's lefts are defined by earlier levels (validated
    at construction, asserted here as the library-level invariant)."""
    g = tornado_graph(num_data, seed=seed)
    defined = set(g.data_nodes)
    for level in g.levels:
        for ci in level:
            con = g.constraints[ci]
            assert set(con.lefts) <= defined
        defined |= {g.constraints[ci].check for ci in level}
    assert defined == set(range(g.num_nodes))
