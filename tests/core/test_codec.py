"""Tests for the real-data XOR codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecodeFailure, TornadoCodec, tornado_graph
from repro.graphs import mirrored_graph


@pytest.fixture
def codec(small_tornado):
    return TornadoCodec(small_tornado, block_size=32)


def random_data(codec, rng):
    return rng.integers(
        0, 256, (codec.graph.num_data, codec.block_size), dtype=np.uint8
    )


class TestEncodeBlocks:
    def test_data_rows_preserved(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        np.testing.assert_array_equal(
            blocks[list(codec.graph.data_nodes)], data
        )

    def test_every_constraint_satisfied(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        for con in codec.graph.constraints:
            expect = np.bitwise_xor.reduce(blocks[list(con.lefts)], axis=0)
            np.testing.assert_array_equal(blocks[con.check], expect)

    def test_shape_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode_blocks(np.zeros((3, 32), dtype=np.uint8))

    def test_rejects_bad_block_size(self, small_tornado):
        with pytest.raises(ValueError):
            TornadoCodec(small_tornado, block_size=0)


class TestDecodeBlocks:
    def test_roundtrip_no_loss(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        present = np.ones(codec.graph.num_nodes, dtype=bool)
        np.testing.assert_array_equal(
            codec.decode_blocks(blocks, present), data
        )

    def test_roundtrip_with_losses(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        present = np.ones(codec.graph.num_nodes, dtype=bool)
        present[[0, 5, 20, 30]] = False
        np.testing.assert_array_equal(
            codec.decode_blocks(blocks, present), data
        )

    def test_absent_rows_ignored_even_if_corrupt(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        corrupted = blocks.copy()
        corrupted[7] ^= 0xFF  # garbage in a lost block
        present = np.ones(codec.graph.num_nodes, dtype=bool)
        present[7] = False
        np.testing.assert_array_equal(
            codec.decode_blocks(corrupted, present), data
        )

    def test_unrecoverable_raises_decode_failure(self, rng):
        g = mirrored_graph(4)
        codec = TornadoCodec(g, block_size=8)
        data = rng.integers(0, 256, (4, 8), dtype=np.uint8)
        blocks = codec.encode_blocks(data)
        present = np.ones(8, dtype=bool)
        present[[0, 4]] = False  # whole mirror pair
        with pytest.raises(DecodeFailure) as exc:
            codec.decode_blocks(blocks, present)
        assert 0 in exc.value.residual

    def test_mask_shape_validation(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        with pytest.raises(ValueError):
            codec.decode_blocks(blocks, np.ones(5, dtype=bool))

    def test_input_blocks_not_mutated(self, codec, rng):
        data = random_data(codec, rng)
        blocks = codec.encode_blocks(data)
        snapshot = blocks.copy()
        present = np.ones(codec.graph.num_nodes, dtype=bool)
        present[[1, 2]] = False
        codec.decode_blocks(blocks, present)
        np.testing.assert_array_equal(blocks, snapshot)


class TestPayloadAPI:
    def test_capacity(self, codec):
        assert codec.stripe_capacity == 16 * 32

    def test_single_stripe_roundtrip(self, codec):
        payload = b"archival object payload" * 3
        stripes = codec.encode_payload(payload)
        assert len(stripes) == 1
        assert codec.decode_payload(stripes) == payload

    def test_multi_stripe_roundtrip(self, codec):
        payload = bytes(range(256)) * 9  # > one stripe
        stripes = codec.encode_payload(payload)
        assert len(stripes) > 1
        assert codec.decode_payload(stripes) == payload

    def test_empty_payload(self, codec):
        stripes = codec.encode_payload(b"")
        assert len(stripes) == 1
        assert codec.decode_payload(stripes) == b""

    def test_degraded_multi_stripe_roundtrip(self, codec, rng):
        payload = bytes(rng.integers(0, 256, 2000, dtype=np.uint8))
        stripes = codec.encode_payload(payload)
        masks = []
        for _ in stripes:
            mask = np.ones(codec.graph.num_nodes, dtype=bool)
            lost = rng.choice(codec.graph.num_nodes, 3, replace=False)
            mask[lost] = False
            masks.append(mask)
        assert codec.decode_payload(stripes, masks) == payload

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=3000))
    def test_payload_roundtrip_property(self, payload):
        codec = TornadoCodec(tornado_graph(16, seed=3), block_size=32)
        assert codec.decode_payload(codec.encode_payload(payload)) == payload
