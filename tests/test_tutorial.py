"""Executable-documentation test: every tutorial snippet must run.

Extracts the fenced ``python`` blocks from docs/TUTORIAL.md and executes
them in order in a shared namespace, so the tutorial can never drift
from the actual API.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = (
    Path(__file__).resolve().parents[1] / "docs" / "TUTORIAL.md"
)


def python_blocks():
    text = TUTORIAL.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_exists_and_has_snippets():
    assert TUTORIAL.exists()
    assert len(python_blocks()) >= 8


def test_tutorial_snippets_execute_in_order(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippet 3 writes certified.graphml
    namespace: dict = {}
    for i, block in enumerate(python_blocks(), start=1):
        try:
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc!r}\n{block}")
    assert (tmp_path / "certified.graphml").exists()
