"""Unit tests for the metrics registry (counters, timers, events)."""

import math
import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    capture,
    disable,
    enable,
    metrics_enabled,
    registry,
)
from repro.obs.registry import NullRegistry


@pytest.fixture(autouse=True)
def _clean_state():
    disable()
    yield
    disable()


class TestCounters:
    def test_inc_and_default(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5
        assert reg.counter("b").value == 0

    def test_same_object_on_reuse(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauges:
    def test_set_and_inc(self):
        reg = MetricsRegistry()
        reg.gauge("workers").set(8)
        assert reg.gauge("workers").value == 8.0
        reg.gauge("workers").inc(2)
        assert reg.gauge("workers").value == 10.0


class TestHistograms:
    def test_streaming_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.stddev == pytest.approx(1.118, abs=1e-3)

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("e").summary() == {"count": 0}

    def test_summary_fields(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(2.0)
        s = reg.histogram("h").summary()
        assert s["count"] == 1 and s["mean"] == 2.0


class TestTimers:
    def test_timer_records_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("op"):
            time.sleep(0.01)
        h = reg.histogram("op")
        assert h.count == 1
        assert h.total >= 0.01

    def test_timer_nesting_is_independent(self):
        reg = MetricsRegistry()
        with reg.timer("outer"):
            with reg.timer("inner"):
                time.sleep(0.01)
            with reg.timer("inner"):
                pass
        outer, inner = reg.histogram("outer"), reg.histogram("inner")
        assert outer.count == 1
        assert inner.count == 2
        # the outer span covers both inner spans
        assert outer.total >= inner.total

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.timer("op"):
                raise ValueError("boom")
        assert reg.histogram("op").count == 1


class TestSpansAndEvents:
    def test_span_emits_begin_end(self):
        reg = MetricsRegistry()
        with reg.span("phase", graph="g1"):
            pass
        kinds = [e["event"] for e in reg.events]
        assert kinds == ["phase.begin", "phase.end"]
        assert reg.events[1]["seconds"] >= 0
        assert reg.histogram("phase").count == 1

    def test_events_buffer_without_sink(self):
        reg = MetricsRegistry()
        reg.event("thing", value=3)
        assert reg.events[0]["value"] == 3
        assert "ts" in reg.events[0]


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert isinstance(registry(), NullRegistry)

    def test_null_registry_is_noop(self):
        reg = registry()
        reg.counter("x").inc(5)
        reg.gauge("y").set(1)
        reg.histogram("z").observe(2)
        reg.event("e", a=1)
        with reg.timer("t"):
            pass
        with reg.span("s"):
            pass
        assert reg.counter("x").value == 0
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enable_disable(self):
        reg = enable()
        assert metrics_enabled()
        assert registry() is reg
        disable()
        assert not metrics_enabled()

    def test_capture_restores_previous(self):
        outer = enable()
        with capture() as inner:
            assert registry() is inner
            inner.counter("n").inc()
        assert registry() is outer
        assert outer.counter("n").value == 0

    def test_snapshot_shape(self):
        with capture() as reg:
            reg.counter("c").inc(2)
            reg.gauge("g").set(1.5)
            reg.histogram("h").observe(3.0)
            snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestConcurrency:
    """The serve loop and worker-merge paths write from many threads;
    no update may be lost and snapshots must stay consistent."""

    def _hammer(self, fn, n_threads=8):
        threads = [
            threading.Thread(target=fn, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_not_lost(self):
        reg = MetricsRegistry()
        per_thread = 5000

        def work(_tid):
            c = reg.counter("hot")
            for _ in range(per_thread):
                c.inc()

        self._hammer(work)
        assert reg.counter("hot").value == 8 * per_thread

    def test_histogram_observations_are_not_lost(self):
        reg = MetricsRegistry()
        per_thread = 2000

        def work(tid):
            h = reg.histogram("lat")
            for i in range(per_thread):
                h.observe(float(tid * per_thread + i))

        self._hammer(work)
        h = reg.histogram("lat")
        total_n = 8 * per_thread
        assert h.count == total_n
        assert h.total == sum(range(total_n))
        assert h.min == 0.0
        assert h.max == float(total_n - 1)

    def test_create_on_first_use_races_yield_one_metric(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work(_tid):
            barrier.wait()
            for i in range(200):
                c = reg.counter(f"metric-{i}")
                c.inc()
                seen.append(c)

        self._hammer(work)
        # Every thread's counter object for a given name is the same
        # instance, so no increments landed on an orphaned metric.
        for i in range(200):
            assert reg.counter(f"metric-{i}").value == 8

    def test_concurrent_merge_snapshot(self):
        reg = MetricsRegistry()
        donor = MetricsRegistry()
        donor.counter("merged").inc(3)
        donor.histogram("spread").observe(1.0)
        donor.histogram("spread").observe(5.0)
        snap = donor.snapshot()

        def work(_tid):
            for _ in range(300):
                reg.merge_snapshot(snap)

        self._hammer(work)
        assert reg.counter("merged").value == 8 * 300 * 3
        assert reg.histogram("spread").count == 8 * 300 * 2

    def test_concurrent_events_append(self):
        reg = MetricsRegistry()

        def work(tid):
            for i in range(500):
                reg.event("e", tid=tid, i=i)

        self._hammer(work)
        assert len(reg.events) == 8 * 500


class TestInstrumentedPaths:
    def test_batch_decoder_counts(self):
        import numpy as np

        from repro.core import BatchPeelingDecoder
        from repro.graphs import tornado_catalog_graph

        graph = tornado_catalog_graph(3)
        decoder = BatchPeelingDecoder(graph)
        masks = np.zeros((7, graph.num_nodes), dtype=bool)
        masks[:, 0] = True
        with capture() as reg:
            decoder.decode_batch(masks)
        assert reg.counter("decoder.batches").value == 1
        assert reg.counter("decoder.cases").value == 7
        assert reg.counter("decoder.rounds").value >= 1
        assert reg.histogram("decoder.decode_seconds").count == 1

    def test_worst_case_search_metrics(self):
        from repro.graphs import tornado_catalog_graph
        from repro.sim import worst_case_search

        with capture() as reg:
            worst_case_search(tornado_catalog_graph(3), max_k=3)
        assert reg.counter("worstcase.searches").value == 1
        assert reg.counter("critical.nodes_expanded").value > 0
        events = [e for e in reg.events if e["event"] == "worstcase.search"]
        assert events and events[0]["nodes_expanded"] > 0

    def test_storage_counters(self):
        from repro.storage import DeviceArray

        with capture() as reg:
            arr = DeviceArray(4)
            arr[0].write_block("k", b"v")
            arr.spin_down_all()
            arr[0].read_block("k")  # spins 0 back up
            arr.fail([1])
            arr.rebuild_all()
        assert reg.counter("storage.writes").value == 1
        assert reg.counter("storage.reads").value == 1
        assert reg.counter("storage.spin_downs").value == 4
        assert reg.counter("storage.spin_ups").value == 1
        assert reg.counter("storage.device_failures").value == 1
        assert reg.counter("storage.rebuilds").value == 1


class TestQuantileHistograms:
    """Log-spaced bucket quantiles (p50/p90/p99) and lossless merges."""

    def test_quantiles_within_documented_tolerance(self):
        import numpy as np

        from repro.obs.registry import BUCKET_GAMMA, Histogram

        rng = np.random.default_rng(0)
        samples = rng.uniform(0.5, 50.0, size=10_000)
        h = Histogram("h")
        for v in samples:
            h.observe(float(v))
        tol = math.sqrt(BUCKET_GAMMA) - 1  # documented bound (~2.5%)
        for q in (0.50, 0.90, 0.99):
            exact = float(np.quantile(samples, q))
            assert abs(h.quantile(q) - exact) / exact <= tol

    def test_quantile_clamped_to_observed_range(self):
        from repro.obs.registry import Histogram

        h = Histogram("h")
        h.observe(3.0)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 3.0

    def test_quantile_rejects_out_of_range(self):
        from repro.obs.registry import Histogram

        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_summary_carries_percentiles_and_buckets(self):
        from repro.obs.registry import Histogram

        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert {"p50", "p90", "p99", "buckets", "sq_total"} <= set(s)
        assert sum(s["buckets"].values()) == 3

    def test_zero_and_negative_values_bucket(self):
        from repro.obs.registry import Histogram

        h = Histogram("h")
        for v in (-2.0, 0.0, 2.0):
            h.observe(v)
        assert "z" in h.buckets
        assert any(k.startswith("n") for k in h.buckets)
        assert h.quantile(0.5) == 0.0

    def test_merge_is_bucketwise_lossless(self):
        import numpy as np

        from repro.obs.registry import Histogram

        rng = np.random.default_rng(1)
        a, b, whole = Histogram("a"), Histogram("b"), Histogram("w")
        for i, v in enumerate(rng.exponential(2.0, size=2_000)):
            (a if i % 2 else b).observe(float(v))
            whole.observe(float(v))
        merged = Histogram("m")
        merged.merge_summary(a.summary())
        merged.merge_summary(b.summary())
        assert merged.buckets == whole.buckets
        assert merged.count == whole.count
        assert merged.quantile(0.99) == whole.quantile(0.99)
        assert merged.sq_total == pytest.approx(whole.sq_total)

    def test_merge_count_one_summary_has_zero_stddev(self):
        # A count==1 summary reports stddev 0.0; merging it must
        # reconstruct sq_total = mean**2, not poison the variance.
        from repro.obs.registry import Histogram

        one = Histogram("one")
        one.observe(5.0)
        s = one.summary()
        assert s["stddev"] == 0.0
        legacy = {k: v for k, v in s.items() if k != "sq_total"}
        m = Histogram("m")
        m.merge_summary(legacy)
        assert m.sq_total == pytest.approx(25.0)
        assert m.stddev == 0.0

    def test_merge_ignores_nonfinite_moments(self):
        from repro.obs.registry import Histogram

        m = Histogram("m")
        m.observe(1.0)
        m.merge_summary(
            {
                "count": 3,
                "total": math.inf,
                "sq_total": math.nan,
                "min": -math.inf,
                "max": math.inf,
            }
        )
        assert m.count == 4
        assert math.isfinite(m.total)
        assert math.isfinite(m.sq_total)
        assert m.min == 1.0 and m.max == 1.0

    def test_merge_legacy_bucketless_summary(self):
        # Pre-bucket summaries still merge; quantiles fall back to the
        # mean when only legacy mass exists.
        from repro.obs.registry import Histogram

        m = Histogram("m")
        m.merge_summary(
            {"count": 4, "total": 8.0, "mean": 2.0, "stddev": 0.0,
             "min": 1.0, "max": 3.0}
        )
        assert m.count == 4
        assert m.quantile(0.5) == 2.0  # mean fallback

    def test_bucket_bounds_invert_keys(self):
        from repro.obs.registry import (
            _bucket_key,
            bucket_midpoint,
            bucket_upper_bound,
        )

        for v in (0.003, 0.7, 1.0, 42.0, -0.9, -17.0):
            key = _bucket_key(v)
            mid = bucket_midpoint(key)
            assert _bucket_key(mid) == key
            if v > 0:
                assert v <= bucket_upper_bound(key)
            elif v < 0:
                assert v <= bucket_upper_bound(key) or math.isclose(
                    v, bucket_upper_bound(key)
                )

    def test_nonfinite_observations_counted_but_unbucketed(self):
        from repro.obs.registry import Histogram

        h = Histogram("h")
        h.observe(math.inf)
        h.observe(2.0)
        assert h.count == 2
        assert sum(h.buckets.values()) == 1


class TestMergeSummaryChains:
    """Chained worker->parent->grandparent folds stay exact.

    The scraper merges per-node summaries into a fleet view every
    scrape, and the time-series store diffs those merged summaries —
    so merge must behave like a proper monoid fold: associative,
    order-independent, and no worse than the documented ~2.5% quantile
    tolerance regardless of how many hops a summary took.
    """

    def shards(self, seed, n_shards=4, per_shard=500):
        import numpy as np

        from repro.obs.registry import Histogram

        rng = np.random.default_rng(seed)
        out = []
        for i in range(n_shards):
            h = Histogram(f"s{i}")
            for v in rng.lognormal(mean=-1.0, sigma=1.2, size=per_shard):
                h.observe(float(v))
            out.append(h)
        return out

    def fold(self, summaries):
        from repro.obs.registry import Histogram

        m = Histogram("m")
        for s in summaries:
            m.merge_summary(s)
        return m

    def test_merge_is_associative(self):
        # ((a+b)+c)+d  vs  a+((b+c)+d): identical summaries.
        a, b, c, d = (h.summary() for h in self.shards(seed=7))
        left = self.fold(
            [self.fold([self.fold([a, b]).summary(), c]).summary(), d]
        )
        right = self.fold(
            [a, self.fold([self.fold([b, c]).summary(), d]).summary()]
        )
        ls, rs = left.summary(), right.summary()
        assert ls["buckets"] == rs["buckets"]
        assert ls["count"] == rs["count"]
        assert ls["total"] == pytest.approx(rs["total"])
        assert ls["sq_total"] == pytest.approx(rs["sq_total"])
        assert ls["min"] == rs["min"] and ls["max"] == rs["max"]

    def test_merge_is_order_independent(self):
        import itertools

        summaries = [h.summary() for h in self.shards(seed=3, n_shards=3)]
        folds = [
            self.fold([summaries[i] for i in perm]).summary()
            for perm in itertools.permutations(range(3))
        ]
        assert all(f["buckets"] == folds[0]["buckets"] for f in folds)
        assert all(f["count"] == folds[0]["count"] for f in folds)

    def test_chained_quantiles_within_documented_tolerance(self):
        # A two-hop merge chain (node -> site -> fleet) must estimate
        # quantiles within the single-histogram bound: relative error
        # <= sqrt(BUCKET_GAMMA) - 1 (~2.47%), plus float slack.
        import numpy as np

        from repro.obs.registry import BUCKET_GAMMA

        shards = self.shards(seed=11, n_shards=4, per_shard=1000)
        site_a = self.fold([shards[0].summary(), shards[1].summary()])
        site_b = self.fold([shards[2].summary(), shards[3].summary()])
        fleet = self.fold([site_a.summary(), site_b.summary()])

        # Buckets don't retain samples — regenerate the same stream
        # to compute the true quantiles.
        rng = np.random.default_rng(11)
        raw = np.sort(
            np.concatenate(
                [
                    rng.lognormal(mean=-1.0, sigma=1.2, size=1000)
                    for _ in range(4)
                ]
            )
        )
        bound = BUCKET_GAMMA**0.5 - 1 + 1e-9
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(raw, q))
            est = fleet.quantile(q)
            assert abs(est - true) / true <= bound

    def test_chain_preserves_moments_exactly(self):
        # count/total/sq_total are sums — a chain of merges must agree
        # with observing every value into one histogram directly.
        from repro.obs.registry import Histogram

        shards = self.shards(seed=5, n_shards=3, per_shard=200)
        whole = Histogram("w")
        import numpy as np

        rng = np.random.default_rng(5)
        for _ in range(3):
            for v in rng.lognormal(mean=-1.0, sigma=1.2, size=200):
                whole.observe(float(v))
        chained = self.fold([shards[0].summary(), shards[1].summary()])
        chained = self.fold([chained.summary(), shards[2].summary()])
        assert chained.count == whole.count
        assert chained.total == pytest.approx(whole.total)
        assert chained.sq_total == pytest.approx(whole.sq_total)
        assert chained.stddev == pytest.approx(whole.stddev)
