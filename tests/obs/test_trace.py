"""Tests for the causal tracing layer (repro.obs.trace)."""

import json

import pytest

from repro.obs.sink import JsonlSink, read_jsonl
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    add_trace_event,
    context_seed,
    current_context,
    current_span,
    start_span,
    trace_capture,
    trace_span,
    tracer,
    tracing_enabled,
    use_context,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeterministicIds:
    def test_same_seed_same_id_stream(self):
        a = Tracer(seed=42)
        b = Tracer(seed=42)
        assert [a.new_id() for _ in range(5)] == [
            b.new_id() for _ in range(5)
        ]

    def test_different_seeds_diverge(self):
        assert Tracer(seed=1).new_id() != Tracer(seed=2).new_id()

    def test_ids_are_16_hex_chars(self):
        i = Tracer(seed=0).new_id()
        assert len(i) == 16
        int(i, 16)  # must parse as hex

    def test_traced_run_is_reproducible(self):
        def run():
            t = Tracer(seed=7, clock=FakeClock())
            with t.start_span("outer", k=1) as outer:
                t.start_span("inner").end()
                outer.add_event("tick")
            return [
                {k: v for k, v in r.items() if k not in ("start", "elapsed")}
                for r in t.records
            ]

        assert run() == run()

    def test_context_seed_is_deterministic_and_salted(self):
        ctx = {"trace_id": "ab", "span_id": "cd"}
        assert context_seed(ctx, 3) == context_seed(ctx, 3)
        assert context_seed(ctx, 3) != context_seed(ctx, 4)


class TestSpanTree:
    def test_nesting_via_contextvar(self):
        t = Tracer(seed=0)
        with t.start_span("outer") as outer:
            with t.start_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_explicit_parent_crosses_tasks(self):
        t = Tracer(seed=0)
        root = t.start_span("root", activate=False)
        child = t.start_span("child", parent=root, activate=False)
        assert child.parent_id == root.span_id
        assert current_span() is None  # neither was activated

    def test_parent_none_forces_new_root(self):
        t = Tracer(seed=0)
        with t.start_span("outer") as outer:
            lone = t.start_span("lone", parent=None, activate=False)
            assert lone.parent_id is None
            assert lone.trace_id != outer.trace_id

    def test_use_context_adopts_remote_parent(self):
        t = Tracer(seed=0)
        ctx = {"trace_id": "aaaa", "span_id": "bbbb"}
        with use_context(ctx):
            assert current_context() == ctx
            span = t.start_span("remote-child")
            assert span.trace_id == "aaaa"
            assert span.parent_id == "bbbb"
            span.end()
        assert current_context() is None

    def test_use_context_none_is_accepted(self):
        with use_context(None):
            assert current_context() is None


class TestSpanLifecycle:
    def test_end_is_idempotent_and_freezes(self):
        t = Tracer(seed=0, clock=FakeClock())
        span = t.start_span("s", activate=False)
        span.end(final=1)
        span.end(final=2)
        span.set_attr("late", True)
        span.add_event("late")
        assert len(t.records) == 1
        rec = t.records[0]
        assert rec["attrs"] == {"final": 1}
        assert rec["events"] == []

    def test_events_record_offsets(self):
        clock = FakeClock()
        t = Tracer(seed=0, clock=clock)
        span = t.start_span("s", activate=False)
        clock.now = 1.5
        span.add_event("mark", k=3)
        span.end()
        (event,) = t.records[0]["events"]
        assert event == {"name": "mark", "offset": 1.5, "k": 3}

    def test_exception_sets_error_attr(self):
        t = Tracer(seed=0)
        with pytest.raises(RuntimeError):
            with t.start_span("s"):
                raise RuntimeError("boom")
        assert t.records[0]["attrs"]["error"] == "RuntimeError"

    def test_record_shape(self):
        t = Tracer(seed=0, clock=FakeClock())
        t.start_span("s", activate=False, k=1).end()
        rec = t.records[0]
        assert rec["event"] == "trace.span"
        assert set(rec) == {
            "event", "trace_id", "span_id", "parent_id", "name",
            "start", "elapsed", "attrs", "events",
        }
        json.dumps(rec)  # must be JSON-serialisable


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert tracer() is None
        span = start_span("anything")
        assert span is NULL_SPAN
        assert not span  # falsy
        span.set_attr("a", 1)
        span.add_event("e")
        assert span.context() is None
        span.end()

    def test_trace_span_noop_when_disabled(self):
        with trace_span("nothing") as span:
            assert span is NULL_SPAN

    def test_add_trace_event_noop_without_span(self):
        add_trace_event("orphan")  # must not raise


class TestTraceCapture:
    def test_capture_restores_previous(self):
        outer = Tracer(seed=1)
        with trace_capture(outer):
            assert tracer() is outer
            with trace_capture(Tracer(seed=2)) as inner:
                assert tracer() is inner
            assert tracer() is outer
        assert tracer() is None

    def test_module_level_helpers_use_active_tracer(self):
        with trace_capture(Tracer(seed=0)) as t:
            with trace_span("s", k=1):
                add_trace_event("tick")
        assert len(t.records) == 1
        assert t.records[0]["events"][0]["name"] == "tick"


class TestExportIngest:
    def test_worker_ship_back_round_trip(self):
        parent = Tracer(seed=0)
        root = parent.start_span("root", activate=False)

        worker = Tracer(seed=context_seed(root.context(), "w"))
        worker.start_span(
            "work", parent=root.context(), activate=False
        ).end()
        shipped = worker.export()
        assert worker.records == []  # drained

        parent.ingest(shipped)
        root.end()
        by_name = {r["name"]: r for r in parent.records}
        assert by_name["work"]["parent_id"] == root.span_id
        assert by_name["work"]["trace_id"] == root.trace_id
        assert parent.spans_finished == 2

    def test_sink_receives_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer(sink=JsonlSink(path), seed=0)
        t.start_span("s", activate=False).end()
        t.sink.close()
        (rec,) = read_jsonl(path)
        assert rec["name"] == "s"
        assert t.records == []  # sink mode does not buffer
