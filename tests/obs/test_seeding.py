"""Unified seeding helper tests."""

import numpy as np
import pytest

from repro.obs import derive_seed, resolve_rng, spawn_seeds


class TestResolveRng:
    def test_int_seed_reproducible(self):
        a = resolve_rng(42).random(4)
        b = resolve_rng(42).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_none_gives_fresh_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        a = resolve_rng(np.int64(5)).random()
        b = resolve_rng(5).random()
        assert a == b

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(9)
        assert isinstance(resolve_rng(ss), np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_rng("nope")


class TestSpawnSeeds:
    @staticmethod
    def _states(children):
        return [tuple(s.generate_state(2).tolist()) for s in children]

    def test_int_fanout_deterministic(self):
        a = self._states(spawn_seeds(7, 5))
        b = self._states(spawn_seeds(7, 5))
        assert a == b
        assert len(set(a)) == 5  # children produce distinct streams

    def test_generator_fanout_reproducible_from_state(self):
        a = self._states(spawn_seeds(np.random.default_rng(3), 4))
        b = self._states(spawn_seeds(np.random.default_rng(3), 4))
        assert a == b

    def test_generator_fanout_advances_state(self):
        gen = np.random.default_rng(3)
        a = self._states(spawn_seeds(gen, 4))
        b = self._states(spawn_seeds(gen, 4))
        assert a != b

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            spawn_seeds(1.5, 2)


class TestDeriveSeed:
    def test_int_passthrough(self):
        assert derive_seed(11) == 11
        assert derive_seed(np.int32(11)) == 11

    def test_none_is_zero(self):
        assert derive_seed(None) == 0

    def test_generator_draw_is_reproducible(self):
        assert derive_seed(np.random.default_rng(1)) == derive_seed(
            np.random.default_rng(1)
        )


class TestEntryPointsAcceptBothForms:
    def test_profile_graph(self):
        from repro.graphs import tornado_catalog_graph
        from repro.sim import profile_graph

        g = tornado_catalog_graph(3)
        p_int = profile_graph(g, samples_per_k=50, seed=5)
        p_gen = profile_graph(
            g, samples_per_k=50, seed=np.random.default_rng(5)
        )
        assert p_int.num_devices == p_gen.num_devices == 96

    def test_generate_certified_with_generator(self):
        from repro.core import generate_certified
        from repro.obs import derive_seed

        # A generator seed derives an integer start seed; the run must
        # match the explicit-int run from the same derived seed.
        start = derive_seed(np.random.default_rng(0))
        by_gen = generate_certified(48, seed=np.random.default_rng(0))
        by_int = generate_certified(48, seed=start)
        assert by_gen.seed_used == by_int.seed_used

    def test_fail_random_with_int_seed(self):
        from repro.storage import DeviceArray

        arr = DeviceArray(10)
        failed = arr.fail_random(3, 0)
        arr2 = DeviceArray(10)
        assert arr2.fail_random(3, 0) == failed

    def test_overhead_int_and_generator_agree(self):
        from repro.graphs import tornado_catalog_graph
        from repro.sim import measure_retrieval_overhead

        g = tornado_catalog_graph(3)
        a = measure_retrieval_overhead(g, n_trials=20, seed=0)
        b = measure_retrieval_overhead(
            g, n_trials=20, seed=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(a.downloads, b.downloads)


class TestDeprecatedRngKwarg:
    def test_warns_and_still_works(self):
        from repro.graphs import tornado_catalog_graph
        from repro.sim import measure_retrieval_overhead

        g = tornado_catalog_graph(3)
        with pytest.warns(DeprecationWarning, match="rng="):
            old = measure_retrieval_overhead(
                g, n_trials=20, rng=np.random.default_rng(0)
            )
        new = measure_retrieval_overhead(g, n_trials=20, seed=0)
        np.testing.assert_array_equal(old.downloads, new.downloads)
