"""Tests for offline telemetry analysis (repro.obs.analyze)."""

from repro.obs.analyze import (
    build_trace_trees,
    format_phase_report,
    format_tail,
    load_events,
    phase_stats,
    render_trace_tree,
    span_records,
)
from repro.obs.sink import JsonlSink
from repro.obs.trace import Tracer


def make_spans():
    t = Tracer(seed=0)
    with t.start_span("root", kind="test"):
        with t.start_span("child-a"):
            t.start_span("leaf").end()
        t.start_span("child-b").end()
    return t.records


class TestTraceTrees:
    def test_tree_reassembly(self):
        roots, orphans = build_trace_trees(make_spans())
        assert orphans == []
        (root,) = roots
        assert root.name == "root"
        assert sorted(c.name for c in root.children) == [
            "child-a",
            "child-b",
        ]
        assert [n.name for n in root.walk()].count("leaf") == 1

    def test_orphans_detected(self):
        spans = make_spans()
        # Drop the root: its children become orphans (their parent_id
        # appears nowhere in the stream).
        spans = [r for r in spans if r["name"] != "root"]
        roots, orphans = build_trace_trees(spans)
        assert roots == []
        assert sorted(n.name for n in orphans) == [
            "child-a",
            "child-b",
        ]

    def test_render_includes_orphan_certificate(self):
        roots, orphans = build_trace_trees(make_spans())
        text = render_trace_tree(roots, orphans)
        assert "orphaned spans: none" in text
        assert "root" in text and "leaf" in text

    def test_render_flags_orphans(self):
        spans = [r for r in make_spans() if r["name"] != "root"]
        roots, orphans = build_trace_trees(spans)
        text = render_trace_tree(roots, orphans)
        assert "orphaned spans (2):" in text
        assert "missing parent=" in text

    def test_render_trace_id_filter(self):
        other = Tracer(seed=99)
        other.start_span("other-root", activate=False).end()
        spans = make_spans() + other.records
        roots, orphans = build_trace_trees(span_records(spans))
        wanted = next(r for r in roots if r.name == "root")
        text = render_trace_tree(
            roots, orphans, trace_id=wanted.trace_id[:6]
        )
        assert "root" in text
        assert "other-root" not in text
        none = render_trace_tree(roots, orphans, trace_id="ffff0000")
        assert "no matching traces" in none

    def test_deterministic_ordering(self):
        spans = make_spans()
        a = render_trace_tree(*build_trace_trees(spans))
        b = render_trace_tree(*build_trace_trees(list(reversed(spans))))
        assert a == b


class TestPhaseStats:
    def test_folds_spans_and_registry_span_events(self):
        events = make_spans() + [
            {"event": "profile.cell.end", "seconds": 0.25},
            {"event": "profile.cell.end", "seconds": 0.35},
            {"event": "unrelated", "other": 1},
        ]
        stats = phase_stats(events)
        assert stats["root"].count == 1
        assert stats["profile.cell"].count == 2
        assert stats["profile.cell"].total == 0.6

    def test_report_table_renders(self):
        stats = phase_stats(make_spans())
        text = format_phase_report(stats)
        header = text.splitlines()[0]
        for col in ("phase", "count", "p50", "p99"):
            assert col in header
        assert "root" in text

    def test_empty_report(self):
        assert format_phase_report({}) == "no timed phases found"


class TestTail:
    def test_tail_filters_and_limits(self):
        events = make_spans() + [
            {"event": "serve.shed", "pending": 9},
        ]
        text = format_tail(events, 10, kind="serve.")
        assert "serve.shed" in text
        assert "trace.span" not in text
        assert format_tail(events, 2).count("\n") == 1

    def test_tail_empty(self):
        assert format_tail([], 5) == "no matching events"


class TestLoadEvents:
    def test_round_trip_through_sink(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        sink = JsonlSink(path)
        t = Tracer(sink=sink, seed=0)
        t.start_span("s", activate=False).end()
        sink.emit({"event": "serve.completed", "n": 1})
        sink.close()
        events = load_events(path)
        assert len(events) == 2
        assert len(span_records(events)) == 1
