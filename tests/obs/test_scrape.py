"""Tests for fleet scraping and snapshot merging (repro.obs.scrape)."""

import pytest

from repro.obs import (
    FleetScraper,
    Histogram,
    LogicalClock,
    ScrapeTarget,
    TimeSeriesStore,
)


class FakeResponse:
    def __init__(self, snapshot):
        self.snapshot = snapshot


def snapshot(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def make_scraper(targets, responses, **kwargs):
    """responses: target_id -> snapshot dict, or an Exception to raise."""

    def fetch(target):
        value = responses[target.target_id]
        if isinstance(value, Exception):
            raise value
        return FakeResponse(value)

    return FleetScraper(targets, fetch=fetch, **kwargs)


COORD = ScrapeTarget("coordinator", "coordinator", "127.0.0.1", 1)
NODE_A = ScrapeTarget("node", "node-0", "127.0.0.1", 2)
NODE_B = ScrapeTarget("node", "node-1", "127.0.0.1", 3)


class TestScrapeTarget:
    def test_rejects_unknown_role(self):
        with pytest.raises(ValueError, match="unknown scrape role"):
            ScrapeTarget("database", "x", "127.0.0.1", 1)

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScrapeTarget("node", "", "127.0.0.1", 1)


class TestLogicalClock:
    def test_advances_and_reads(self):
        clock = LogicalClock()
        assert clock() == 0.0
        assert clock.advance(60.0) == 60.0
        assert clock() == 60.0

    def test_only_moves_forward(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1.0)


class TestScraperValidation:
    def test_needs_targets(self):
        with pytest.raises(ValueError, match="at least one target"):
            FleetScraper([])

    def test_rejects_duplicate_ids(self):
        dup = ScrapeTarget("node", "node-0", "127.0.0.1", 9)
        with pytest.raises(ValueError, match="duplicate target ids"):
            FleetScraper([NODE_A, dup])


class TestMerge:
    def test_counters_sum_across_targets(self):
        scraper = make_scraper(
            [NODE_A, NODE_B],
            {
                "node-0": snapshot(counters={"node.gets": 10}),
                "node-1": snapshot(counters={"node.gets": 32}),
            },
            clock=LogicalClock(),
        )
        merged = scraper.scrape_once()["merged"]
        assert merged["counters"]["node.gets"] == 42

    def test_gauges_suffix_only_multi_target_roles(self):
        scraper = make_scraper(
            [COORD, NODE_A, NODE_B],
            {
                "coordinator": snapshot(gauges={"cluster.objects": 4}),
                "node-0": snapshot(gauges={"node.blocks": 7}),
                "node-1": snapshot(gauges={"node.blocks": 9}),
            },
            clock=LogicalClock(),
        )
        gauges = scraper.scrape_once()["merged"]["gauges"]
        # One coordinator: plain name survives for stable SLO specs.
        assert gauges["cluster.objects"] == 4.0
        assert "cluster.objects.coordinator" not in gauges
        # Two nodes: per-target suffixes.
        assert gauges["node.blocks.node-0"] == 7.0
        assert gauges["node.blocks.node-1"] == 9.0
        assert "node.blocks" not in gauges

    def test_fleet_rollups_and_up_gauges(self):
        scraper = make_scraper(
            [COORD, NODE_A],
            {
                "coordinator": snapshot(
                    gauges={
                        "cluster.repair.margin_min": 2,
                        "cluster.repair.at_risk_stripes": 1,
                        "cluster.objects": 6,
                    }
                ),
                "node-0": snapshot(),
            },
            clock=LogicalClock(),
        )
        gauges = scraper.scrape_once()["merged"]["gauges"]
        assert gauges["fleet.repair.margin_min"] == 2.0
        assert gauges["fleet.at_risk_stripes"] == 1.0
        assert gauges["fleet.objects"] == 6.0
        assert gauges["fleet.targets.total"] == 2.0
        assert gauges["fleet.targets.up"] == 2.0
        assert gauges["fleet.targets.down"] == 0.0
        assert gauges["up.coordinator"] == 1.0
        assert gauges["up.node-0"] == 1.0

    def test_histograms_merge_losslessly(self):
        a, b = Histogram("h"), Histogram("h")
        for v in (0.001, 0.002):
            a.observe(v)
        for v in (0.004, 0.008):
            b.observe(v)
        scraper = make_scraper(
            [NODE_A, NODE_B],
            {
                "node-0": snapshot(histograms={"lat": a.summary()}),
                "node-1": snapshot(histograms={"lat": b.summary()}),
            },
            clock=LogicalClock(),
        )
        merged = scraper.scrape_once()["merged"]["histograms"]["lat"]
        assert merged["count"] == 4
        both = Histogram("h")
        for v in (0.001, 0.002, 0.004, 0.008):
            both.observe(v)
        assert merged["buckets"] == both.summary()["buckets"]


class TestFailureHandling:
    def test_dark_target_degrades_not_wedges(self):
        clock = LogicalClock()
        responses = {
            "coordinator": snapshot(counters={"cluster.reads": 5}),
            "node-0": snapshot(counters={"node.gets": 50}),
        }
        scraper = make_scraper([COORD, NODE_A], responses, clock=clock)
        scraper.scrape_once()

        clock.advance(60.0)
        responses["node-0"] = ConnectionError("refused")
        view = scraper.scrape_once()
        status = view["targets"]["node-0"]
        assert status["up"] is False
        assert status["stale"] is True
        assert status["age"] == 60.0
        assert "ConnectionError" in status["error"]
        assert scraper.failures["node-0"] == 1
        # The last good snapshot keeps feeding the merge: fleet
        # counters must not jump backwards while a node is dark.
        assert view["merged"]["counters"]["node.gets"] == 50
        assert view["merged"]["gauges"]["fleet.targets.down"] == 1.0
        assert view["merged"]["gauges"]["up.node-0"] == 0.0

    def test_never_seen_target_contributes_nothing(self):
        scraper = make_scraper(
            [COORD, NODE_A],
            {
                "coordinator": snapshot(counters={"cluster.reads": 5}),
                "node-0": ConnectionError("refused"),
            },
            clock=LogicalClock(),
        )
        view = scraper.scrape_once()
        assert view["targets"]["node-0"]["stale"] is False
        assert "node.gets" not in view["merged"]["counters"]

    def test_recovery_clears_staleness(self):
        clock = LogicalClock()
        responses = {"node-0": ConnectionError("down")}
        scraper = make_scraper([NODE_A], responses, clock=clock)
        scraper.scrape_once()
        clock.advance(60.0)
        responses["node-0"] = snapshot(counters={"node.gets": 1})
        view = scraper.scrape_once()
        assert view["targets"]["node-0"]["up"] is True
        assert view["targets"]["node-0"]["stale"] is False
        assert view["targets"]["node-0"]["age"] == 0.0


class TestStoreIntegration:
    def test_scrapes_auto_ingest_with_logical_timestamps(self):
        clock = LogicalClock()
        store = TimeSeriesStore(resolution=60.0)
        responses = {"node-0": snapshot(counters={"node.gets": 10})}
        scraper = make_scraper(
            [NODE_A], responses, clock=clock, store=store
        )
        for gets in (10, 40, 100):
            responses["node-0"] = snapshot(counters={"node.gets": gets})
            clock.advance(60.0)
            scraper.scrape_once()
        assert len(store) == 3
        assert store.latest()["ts"] == 180.0
        assert store.counter_rate("node.gets", 120.0) == pytest.approx(
            0.75
        )
        assert scraper.scrapes == 3
