"""JSONL sink round-trip tests."""

import json

import numpy as np

from repro.obs import JsonlSink, MetricsRegistry, read_jsonl


class TestJsonlRoundTrip:
    def test_emit_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"event": "a", "n": 1})
            sink.emit({"event": "b", "values": [1, 2, 3]})
        events = read_jsonl(path)
        assert [e["event"] for e in events] == ["a", "b"]
        assert events[1]["values"] == [1, 2, 3]

    def test_numpy_values_serialise(self, tmp_path):
        path = tmp_path / "np.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(
                {
                    "scalar": np.int64(7),
                    "arr": np.arange(3),
                    "s": frozenset({2, 1}),
                }
            )
        (event,) = read_jsonl(path)
        assert event["scalar"] == 7
        assert event["arr"] == [0, 1, 2]
        assert event["s"] == [1, 2]

    def test_lazy_open_and_append(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # lazy: no file until first event
        sink.emit({"event": "x"})
        sink.close()
        sink2 = JsonlSink(path)
        sink2.emit({"event": "y"})
        sink2.close()
        assert [e["event"] for e in read_jsonl(path)] == ["x", "y"]

    def test_each_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        reg = MetricsRegistry(sink=JsonlSink(path))
        reg.event("one", a=1)
        reg.event("two", b=2)
        reg.sink.close()
        for line in path.read_text().splitlines():
            json.loads(line)  # must not raise

    def test_registry_routes_events_to_sink(self, tmp_path):
        path = tmp_path / "routed.jsonl"
        reg = MetricsRegistry(sink=JsonlSink(path))
        reg.event("hello", x=1)
        reg.sink.close()
        assert reg.events == []  # buffered nowhere else
        assert read_jsonl(path)[0]["x"] == 1


class TestSinkThreadSafety:
    def test_concurrent_emits_never_tear_lines(self, tmp_path):
        """8 threads x 500 emits: every line must parse as standalone
        JSON — the lock serialises writes so lines never interleave."""
        import json
        import threading

        from repro.obs import JsonlSink

        path = tmp_path / "stress.jsonl"
        sink = JsonlSink(path)
        n_threads, n_events = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for i in range(n_events):
                sink.emit(
                    {"event": "stress", "tid": tid, "i": i,
                     "pad": "x" * 200}
                )

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()

        seen = set()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)  # raises on a torn line
                seen.add((record["tid"], record["i"]))
        assert len(seen) == n_threads * n_events
        assert sink.emitted == n_threads * n_events
