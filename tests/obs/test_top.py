"""Tests for the fleet dashboard renderer (repro.obs.top)."""

from repro.obs import (
    Histogram,
    JsonlSink,
    SloEngine,
    TimeSeriesStore,
    load_timeline,
    render_top,
)
from repro.obs.top import format_bytes


def fleet_view(ts, down=0):
    h = Histogram("cluster.get.seconds")
    for _ in range(20):
        h.observe(0.003)
    return {
        "ts": ts,
        "targets": {
            "coordinator": {
                "role": "coordinator",
                "host": "127.0.0.1",
                "port": 9000,
                "up": True,
                "stale": False,
                "age": 0.0,
                "error": None,
            },
            "node-0": {
                "role": "node",
                "host": "127.0.0.1",
                "port": 9001,
                "up": down == 0,
                "stale": down > 0,
                "age": 60.0 if down else 0.0,
                "error": "ConnectionError: refused" if down else None,
            },
        },
        "merged": {
            "counters": {
                "cluster.get.objects": 100 + ts,
                "cluster.repair.bytes": 4096,
            },
            "gauges": {
                "fleet.targets.total": 2.0,
                "fleet.targets.up": 2.0 - down,
                "fleet.targets.down": float(down),
                "fleet.repair.margin_min": 3.0,
                "fleet.at_risk_stripes": 0.0,
                "fleet.repair.queue_depth": 0.0,
                "cluster.repair.healthy_margin": 3.0,
            },
            "histograms": {"cluster.get.seconds": h.summary()},
        },
    }


def filled_store(sink=None, down_last=False):
    store = TimeSeriesStore(resolution=60.0, sink=sink)
    for i in range(5):
        down = 1 if (down_last and i == 4) else 0
        store.ingest(fleet_view(float((i + 1) * 60), down=down))
    return store


class TestFormatBytes:
    def test_magnitudes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.5 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**4) == "5.0 TB"


class TestRenderTop:
    def test_empty_store(self):
        assert "no samples yet" in render_top(TimeSeriesStore())

    def test_frame_without_engine(self):
        text = render_top(filled_store())
        assert "targets: 2/2 up" in text
        assert "coordinator" in text and "node-0" in text
        assert "read p99" in text
        assert "margin min 3.0" in text
        # No engine: no SLO table, no score.
        assert "slo burn rates" not in text
        assert "score —" in text

    def test_down_target_shows_staleness_and_error(self):
        text = render_top(filled_store(down_last=True))
        assert "targets: 1/2 up" in text
        assert "DOWN (stale 60s)" in text
        assert "ConnectionError: refused" in text

    def test_frame_with_engine_shows_burns_and_score(self):
        store = filled_store()
        engine = SloEngine()
        engine.replay(store)
        text = render_top(store, engine)
        assert "slo burn rates" in text
        assert "availability" in text
        assert "alerts: none firing" in text
        assert "score 1.00" in text

    def test_firing_alert_is_called_out(self):
        store = filled_store(down_last=True)
        engine = SloEngine()
        engine.replay(store)
        text = render_top(store, engine)
        assert "ALERTS FIRING: availability[fast]" in text

    def test_live_and_replayed_frames_agree(self, tmp_path):
        """The acceptance bar: same store, same renderer, same frame."""
        path = tmp_path / "timeline.jsonl"
        sink = JsonlSink(path)
        live_store = filled_store(sink=sink)
        sink.close()
        live_engine = SloEngine()
        live_engine.replay(live_store)
        live_frame = render_top(live_store, live_engine)

        replayed = load_timeline(path, resolution=60.0)
        replay_engine = SloEngine()
        replay_engine.replay(replayed)
        assert render_top(replayed, replay_engine) == live_frame
