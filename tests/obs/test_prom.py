"""Tests for Prometheus text-format exposition (repro.obs.prom)."""

from repro.obs import MetricsRegistry, render_prometheus


def snapshot_with_everything():
    reg = MetricsRegistry()
    reg.counter("serve.completed").inc(7)
    reg.gauge("serve.queue_depth").set(3)
    h = reg.histogram("serve.request_latency_seconds")
    for v in (0.001, 0.002, 0.004, 0.008):
        h.observe(v)
    return reg.snapshot()


class TestRenderPrometheus:
    def test_counter_gauge_histogram_types(self):
        text = render_prometheus(snapshot_with_everything())
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert (
            "# TYPE repro_serve_request_latency_seconds histogram"
            in text
        )

    def test_histogram_buckets_cumulative_and_capped(self):
        text = render_prometheus(snapshot_with_everything())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith(
                "repro_serve_request_latency_seconds_bucket"
            )
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative
        assert lines[-1].startswith(
            'repro_serve_request_latency_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 4
        assert "repro_serve_request_latency_seconds_count 4" in text
        assert "repro_serve_request_latency_seconds_sum" in text

    def test_bucket_bounds_ascend(self):
        text = render_prometheus(snapshot_with_everything())
        bounds = []
        for line in text.splitlines():
            if '_bucket{le="' in line and "+Inf" not in line:
                bounds.append(float(line.split('"')[1]))
        assert bounds == sorted(bounds)

    def test_dotted_names_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c/d").inc()
        text = render_prometheus(reg.snapshot())
        assert "repro_a_b_c_d_total 1" in text

    def test_legacy_bucketless_histogram_renders(self):
        snap = {
            "histograms": {
                "old": {"count": 5, "total": 10.0, "mean": 2.0}
            }
        }
        text = render_prometheus(snap)
        assert 'repro_old_bucket{le="+Inf"} 5' in text
        assert "repro_old_sum 10" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert "acme_x_total 1" in render_prometheus(
            reg.snapshot(), prefix="acme_"
        )

    def test_service_stats_dict_renders_directly(self):
        # stats() embeds extra keys (state, plan_cache) beside the
        # snapshot; the renderer must ignore them.
        snap = snapshot_with_everything()
        snap["state"] = "running"
        snap["plan_cache"] = {"hits": 1}
        text = render_prometheus(snap)
        assert "repro_serve_completed_total 7" in text
        assert "running" not in text


class TestLabeledFamilies:
    def test_dynamic_suffix_folds_into_one_family(self):
        snap = {
            "counters": {
                "cluster.repair.bytes": 300,
                "cluster.repair.bytes.node-0": 100,
                "cluster.repair.bytes.node-1": 200,
            }
        }
        text = render_prometheus(snap)
        # One TYPE header, plain total + one labelled sample per node —
        # not three distinct metric families.
        assert text.count("# TYPE repro_cluster_repair_bytes_total") == 1
        assert "repro_cluster_repair_bytes_total 300" in text
        assert (
            'repro_cluster_repair_bytes_total{node="node-0"} 100' in text
        )
        assert (
            'repro_cluster_repair_bytes_total{node="node-1"} 200' in text
        )
        assert "repro_cluster_repair_bytes_node_0" not in text

    def test_site_and_target_labels(self):
        snap = {
            "counters": {"sites.wan.bytes.site-0": 7},
            "gauges": {"up.coordinator": 1.0, "node.blocks.node-2": 5},
        }
        text = render_prometheus(snap)
        assert 'repro_sites_wan_bytes_total{site="site-0"} 7' in text
        assert 'repro_up{target="coordinator"} 1' in text
        assert 'repro_node_blocks{node="node-2"} 5' in text

    def test_longest_prefix_wins(self):
        # "node.blocks" must match before any shorter prefix could.
        snap = {"gauges": {"node.blocks.node-0": 1.0}}
        text = render_prometheus(snap)
        assert 'repro_node_blocks{node="node-0"} 1' in text

    def test_label_values_escaped(self):
        snap = {"gauges": {'up.we"ird': 1.0}}
        text = render_prometheus(snap)
        assert 'repro_up{target="we\\"ird"} 1' in text

    def test_unlabelled_names_unchanged(self):
        # The frontend's existing exposition must stay byte-identical.
        snap = {"counters": {"serve.completed": 3}}
        assert (
            render_prometheus(snap)
            == "# TYPE repro_serve_completed_total counter\n"
            "repro_serve_completed_total 3\n"
        )


class TestCardinalityGuard:
    def test_warns_once_past_max_series(self, monkeypatch):
        import warnings

        from repro.obs import prom

        monkeypatch.setattr(prom, "_warned_cardinality", False)
        snap = {
            "gauges": {f"runaway.series.{i}": 1.0 for i in range(1100)}
        }
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            render_prometheus(snap)
            render_prometheus(snap)  # second render must stay silent
        relevant = [
            w for w in caught if "LABELED_FAMILIES" in str(w.message)
        ]
        assert len(relevant) == 1
        assert issubclass(relevant[0].category, RuntimeWarning)

    def test_no_warning_under_the_limit(self, monkeypatch):
        import warnings

        from repro.obs import prom

        monkeypatch.setattr(prom, "_warned_cardinality", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            render_prometheus(snapshot_with_everything())
        assert not [
            w for w in caught if "LABELED_FAMILIES" in str(w.message)
        ]
