"""Tests for Prometheus text-format exposition (repro.obs.prom)."""

from repro.obs import MetricsRegistry, render_prometheus


def snapshot_with_everything():
    reg = MetricsRegistry()
    reg.counter("serve.completed").inc(7)
    reg.gauge("serve.queue_depth").set(3)
    h = reg.histogram("serve.request_latency_seconds")
    for v in (0.001, 0.002, 0.004, 0.008):
        h.observe(v)
    return reg.snapshot()


class TestRenderPrometheus:
    def test_counter_gauge_histogram_types(self):
        text = render_prometheus(snapshot_with_everything())
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert (
            "# TYPE repro_serve_request_latency_seconds histogram"
            in text
        )

    def test_histogram_buckets_cumulative_and_capped(self):
        text = render_prometheus(snapshot_with_everything())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith(
                "repro_serve_request_latency_seconds_bucket"
            )
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)  # cumulative
        assert lines[-1].startswith(
            'repro_serve_request_latency_seconds_bucket{le="+Inf"}'
        )
        assert counts[-1] == 4
        assert "repro_serve_request_latency_seconds_count 4" in text
        assert "repro_serve_request_latency_seconds_sum" in text

    def test_bucket_bounds_ascend(self):
        text = render_prometheus(snapshot_with_everything())
        bounds = []
        for line in text.splitlines():
            if '_bucket{le="' in line and "+Inf" not in line:
                bounds.append(float(line.split('"')[1]))
        assert bounds == sorted(bounds)

    def test_dotted_names_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c/d").inc()
        text = render_prometheus(reg.snapshot())
        assert "repro_a_b_c_d_total 1" in text

    def test_legacy_bucketless_histogram_renders(self):
        snap = {
            "histograms": {
                "old": {"count": 5, "total": 10.0, "mean": 2.0}
            }
        }
        text = render_prometheus(snap)
        assert 'repro_old_bucket{le="+Inf"} 5' in text
        assert "repro_old_sum 10" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert "acme_x_total 1" in render_prometheus(
            reg.snapshot(), prefix="acme_"
        )

    def test_service_stats_dict_renders_directly(self):
        # stats() embeds extra keys (state, plan_cache) beside the
        # snapshot; the renderer must ignore them.
        snap = snapshot_with_everything()
        snap["state"] = "running"
        snap["plan_cache"] = {"hits": 1}
        text = render_prometheus(snap)
        assert "repro_serve_completed_total 7" in text
        assert "running" not in text
