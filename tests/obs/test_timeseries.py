"""Tests for the fleet time-series store (repro.obs.timeseries)."""

import pytest

from repro.obs import (
    Histogram,
    JsonlSink,
    TimeSeriesStore,
    load_timeline,
    subtract_summary,
    summary_quantile,
)


def view(ts, counters=None, gauges=None, histograms=None, targets=None):
    return {
        "ts": ts,
        "targets": targets or {},
        "merged": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


def filled_store(points, **kwargs):
    """points: list of (ts, counters, gauges) triples."""
    store = TimeSeriesStore(**kwargs)
    for ts, counters, gauges in points:
        store.ingest(view(ts, counters=counters, gauges=gauges))
    return store


class TestIngest:
    def test_samples_are_ring_buffered(self):
        store = TimeSeriesStore(retention=3)
        for t in range(5):
            store.ingest(view(float(t * 60)))
        assert len(store) == 3
        assert store.ingested == 5
        assert store.latest()["ts"] == 240.0
        # Indices keep counting even after the ring wraps.
        assert store.latest()["index"] == 4

    def test_backwards_clock_is_rejected(self):
        store = TimeSeriesStore()
        store.ingest(view(120.0))
        with pytest.raises(ValueError, match="clock went backwards"):
            store.ingest(view(60.0))

    def test_equal_timestamps_are_allowed(self):
        store = TimeSeriesStore()
        store.ingest(view(60.0))
        store.ingest(view(60.0))
        assert len(store) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(resolution=0)
        with pytest.raises(ValueError):
            TimeSeriesStore(retention=1)


class TestWindowQueries:
    def test_window_is_half_open_interval(self):
        store = filled_store(
            [(float(t), {}, {}) for t in (0, 60, 120, 180)]
        )
        picked = [s["ts"] for s in store.window(120.0, now=180.0)]
        # (60, 180]: excludes the sample exactly at the window start.
        assert picked == [120.0, 180.0]

    def test_narrow_window_still_sees_newest(self):
        store = filled_store([(0.0, {}, {}), (60.0, {}, {})])
        picked = store.window(0.5, now=60.0)
        assert [s["ts"] for s in picked] == [60.0]

    def test_counter_increase_and_rate(self):
        store = filled_store(
            [
                (0.0, {"reads": 10}, {}),
                (60.0, {"reads": 40}, {}),
                (120.0, {"reads": 100}, {}),
            ]
        )
        assert store.counter_increase("reads", 120.0) == 90.0
        assert store.counter_rate("reads", 120.0) == pytest.approx(0.75)

    def test_counter_restart_clamps_to_zero(self):
        store = filled_store(
            [(0.0, {"reads": 500}, {}), (60.0, {"reads": 5}, {})]
        )
        assert store.counter_increase("reads", 60.0) == 0.0

    def test_missing_counter_reads_zero(self):
        store = filled_store([(0.0, {}, {})])
        assert store.counter_rate("nope", 60.0) == 0.0

    def test_gauge_stats(self):
        store = filled_store(
            [
                (0.0, {}, {"depth": 3.0}),
                (60.0, {}, {"depth": 9.0}),
                (120.0, {}, {"depth": 6.0}),
            ]
        )
        stats = store.gauge_stats("depth", 300.0)
        assert stats == {
            "last": 6.0,
            "min": 3.0,
            "max": 9.0,
            "avg": 6.0,
        }
        assert store.gauge_stats("missing", 300.0) is None

    def test_violation_fraction(self):
        store = filled_store(
            [(float(t * 60), {}, {"g": float(t)}) for t in range(4)]
        )
        frac = store.violation_fraction(
            lambda s: s["gauges"]["g"] >= 2.0, 300.0
        )
        assert frac == pytest.approx(0.5)


class TestWindowedHistograms:
    def hist_summary(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        return h.summary()

    def test_subtract_summary_isolates_the_window(self):
        old = self.hist_summary([0.001] * 100)
        new = self.hist_summary([0.001] * 100 + [1.0] * 100)
        diff = subtract_summary(new, old)
        assert diff["count"] == 100
        # The diffed window holds only the slow observations.
        q = summary_quantile(diff, 0.5)
        assert q == pytest.approx(1.0, rel=0.05)

    def test_subtract_summary_restart_returns_new(self):
        old = self.hist_summary([1.0] * 50)
        new = self.hist_summary([2.0] * 10)  # count went backwards
        assert subtract_summary(new, old) == dict(new)

    def test_subtract_summary_equal_counts_is_empty(self):
        s = self.hist_summary([1.0, 2.0])
        assert subtract_summary(s, s) == {"count": 0}

    def test_store_windowed_quantile(self):
        fast = self.hist_summary([0.002] * 50)
        slow_tail = self.hist_summary([0.002] * 50 + [0.8] * 50)
        store = TimeSeriesStore()
        store.ingest(view(0.0, histograms={"lat": fast}))
        store.ingest(view(60.0, histograms={"lat": slow_tail}))
        # Full history includes the fast baseline...
        assert store.histogram_quantile(
            "lat", 0.25, 1e9
        ) == pytest.approx(0.002, rel=0.05)
        # ...while the last-minute window sees only the slow burst.
        assert store.histogram_quantile(
            "lat", 0.5, 60.0
        ) == pytest.approx(0.8, rel=0.05)

    def test_summary_quantile_empty(self):
        assert summary_quantile({"count": 0}, 0.5) is None


class TestPersistence:
    def test_sink_roundtrip_via_load_timeline(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        store = TimeSeriesStore(sink=JsonlSink(path))
        store.ingest(
            view(
                60.0,
                counters={"reads": 5},
                gauges={"up": 1.0},
                targets={"c": {"up": True}},
            )
        )
        store.ingest(view(120.0, counters={"reads": 9}))
        store.sink.close()
        loaded = load_timeline(path)
        assert len(loaded) == 2
        assert loaded.latest()["counters"]["reads"] == 9
        assert loaded.window(1e9)[0]["targets"] == {"c": {"up": True}}

    def test_load_timeline_ignores_foreign_events(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "slo.alert", "state": "firing"})
        sink.emit({"event": "fleet.sample", "ts": 60.0})
        sink.close()
        assert len(load_timeline(path)) == 1

    def test_load_timeline_without_samples_raises(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        JsonlSink(path).emit({"event": "other"})
        with pytest.raises(ValueError, match="no fleet.sample"):
            load_timeline(path)
