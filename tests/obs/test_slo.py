"""Tests for SLO burn-rate alerting and error budgets (repro.obs.slo)."""

import json

import pytest

from repro.obs import (
    BurnWindow,
    Histogram,
    Objective,
    SloEngine,
    SloSpec,
    TimeSeriesStore,
    default_slo_spec,
)


def view(ts, counters=None, gauges=None, histograms=None):
    return {
        "ts": ts,
        "targets": {},
        "merged": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


def availability_samples(total=4.0, down=()):
    """Sample gauges for a fleet where ``down`` indexes are dark."""

    def gauges(i):
        d = 1.0 if i in down else 0.0
        return {
            "fleet.targets.total": total,
            "fleet.targets.down": d,
        }

    return gauges


class TestValidation:
    def test_burn_window_ordering(self):
        with pytest.raises(ValueError, match="exceeds long"):
            BurnWindow("w", 600.0, 300.0, 10.0)

    def test_objective_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Objective(name="x", kind="magic", metric="m", bound=1.0)

    def test_ratio_needs_bad_and_total(self):
        with pytest.raises(ValueError, match="needs 'bad'"):
            Objective(name="x", kind="ratio")

    def test_gauge_needs_metric_and_bound(self):
        with pytest.raises(ValueError, match="needs 'metric'"):
            Objective(name="x", kind="gauge_above")

    def test_spec_rejects_duplicates(self):
        o = Objective(
            name="x", kind="gauge_above", metric="m", bound=1.0
        )
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec(objectives=(o, o))


class TestSpecSerialisation:
    def test_default_spec_roundtrips(self):
        spec = default_slo_spec()
        again = SloSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(default_slo_spec().to_dict()))
        assert SloSpec.load(path) == default_slo_spec()


class TestBadFraction:
    def test_ratio_kind(self):
        store = TimeSeriesStore()
        store.ingest(view(0.0, counters={"shed": 0, "req": 0}))
        store.ingest(view(60.0, counters={"shed": 5, "req": 100}))
        o = Objective(
            name="shed", kind="ratio", bad="shed", total="req"
        )
        assert o.bad_fraction(store, 120.0) == pytest.approx(0.05)

    def test_ratio_with_no_traffic_is_healthy(self):
        store = TimeSeriesStore()
        store.ingest(view(0.0))
        o = Objective(
            name="shed", kind="ratio", bad="shed", total="req"
        )
        assert o.bad_fraction(store, 60.0) == 0.0

    def test_gauge_ratio_averages_over_samples(self):
        store = TimeSeriesStore()
        gauges = availability_samples(total=4.0, down={1})
        for i in range(2):
            store.ingest(view(float(i * 60), gauges=gauges(i)))
        o = Objective(
            name="avail",
            kind="gauge_ratio",
            bad="fleet.targets.down",
            total="fleet.targets.total",
        )
        assert o.bad_fraction(store, 300.0) == pytest.approx(0.125)

    def test_gauge_above_and_below(self):
        store = TimeSeriesStore()
        for i, margin in enumerate((3.0, 0.0, 3.0, 3.0)):
            store.ingest(
                view(float(i * 60), gauges={"margin": margin})
            )
        below = Objective(
            name="m", kind="gauge_below", metric="margin", bound=1.0
        )
        assert below.bad_fraction(store, 300.0) == pytest.approx(0.25)
        above = Objective(
            name="a", kind="gauge_above", metric="margin", bound=2.0
        )
        assert above.bad_fraction(store, 300.0) == pytest.approx(0.75)

    def test_quantile_above(self):
        slow = Histogram("h")
        for _ in range(100):
            slow.observe(2.0)
        store = TimeSeriesStore()
        store.ingest(
            view(0.0, histograms={"lat": slow.summary()})
        )
        o = Objective(
            name="p99",
            kind="quantile_above",
            metric="lat",
            bound=0.5,
            quantile=0.99,
        )
        assert o.bad_fraction(store, 60.0) == 1.0

    def test_rate_above(self):
        store = TimeSeriesStore()
        store.ingest(view(0.0, counters={"wan": 0}))
        store.ingest(view(60.0, counters={"wan": 120_000_000}))
        o = Objective(
            name="wan", kind="rate_above", metric="wan", bound=1e6
        )
        assert o.bad_fraction(store, 120.0) == 1.0


class TestBurnRateAlerting:
    def engine_and_store(self):
        spec = SloSpec(
            objectives=(
                Objective(
                    name="availability",
                    kind="gauge_ratio",
                    bad="fleet.targets.down",
                    total="fleet.targets.total",
                    target=0.999,
                    windows=(BurnWindow("fast", 300.0, 3600.0, 14.4),),
                ),
            )
        )
        return SloEngine(spec), TimeSeriesStore(resolution=60.0)

    def drive(self, engine, store, down_at):
        """Feed 60s-spaced samples; return ts -> transitions."""
        transitions = {}
        gauges = availability_samples(total=4.0, down=down_at)
        for i in range(30):
            ts = float((i + 1) * 60)
            store.ingest(view(ts, gauges=gauges(i)))
            got = engine.evaluate(store, ts)
            if got:
                transitions[ts] = got
        return transitions

    def test_fires_at_the_kill_sample_and_clears_after_drain(self):
        engine, store = self.engine_and_store()
        # Samples 0-9 healthy, 10-12 one target dark, then healed.
        transitions = self.drive(engine, store, down_at={10, 11, 12})
        fire_ts = min(transitions)
        assert fire_ts == 660.0  # the first dark sample, ts (10+1)*60
        assert transitions[fire_ts][0]["state"] == "firing"
        # Clears once the 300s short window drains of dark samples:
        # the last dark sample (ts 780) ages out exactly when the
        # half-open window (now-300, now] starts at it — now = 1080.
        clear_ts = max(transitions)
        assert transitions[clear_ts][0]["state"] == "ok"
        assert clear_ts == 1080.0
        assert not engine.firing()

    def test_alert_timing_is_deterministic(self):
        runs = []
        for _ in range(2):
            engine, store = self.engine_and_store()
            runs.append(self.drive(engine, store, down_at={5, 6}))
        assert runs[0] == runs[1]

    def test_single_blip_does_not_fire_when_long_window_disagrees(self):
        spec = SloSpec(
            objectives=(
                Objective(
                    name="availability",
                    kind="gauge_ratio",
                    bad="fleet.targets.down",
                    total="fleet.targets.total",
                    target=0.9,  # budget 0.1: burn 2.5 per dark sample
                    windows=(BurnWindow("fast", 300.0, 3600.0, 2.0),),
                ),
            )
        )
        engine = SloEngine(spec)
        store = TimeSeriesStore(resolution=60.0)
        gauges = availability_samples(total=4.0, down={40})
        fired = []
        for i in range(42):
            ts = float((i + 1) * 60)
            store.ingest(view(ts, gauges=gauges(i)))
            fired += engine.evaluate(store, ts)
        # Short window burn: 2.5/5 samples = ... above threshold, but
        # the long window (41 clean samples) stays under it.
        assert fired == []

    def test_replay_reproduces_live_transitions(self):
        live_engine, store = self.engine_and_store()
        live = self.drive(live_engine, store, down_at={10, 11})
        flat_live = [t for ts in sorted(live) for t in live[ts]]
        replay_engine = SloEngine(live_engine.spec)
        replayed = replay_engine.replay(store)
        assert replayed == flat_live


class TestReporting:
    def test_durability_score(self):
        engine = SloEngine()
        store = TimeSeriesStore()
        store.ingest(
            view(
                0.0,
                gauges={
                    "fleet.repair.margin_min": 1.0,
                    "fleet.at_risk_stripes": 0.0,
                    "cluster.repair.healthy_margin": 3.0,
                },
            )
        )
        d = engine.durability(store)
        assert d["score"] == pytest.approx(0.5)
        assert d["margin_min"] == 1.0
        assert d["at_risk_stripes"] == 0.0

    def test_durability_without_gauges(self):
        engine = SloEngine()
        store = TimeSeriesStore()
        store.ingest(view(0.0))
        assert engine.durability(store)["score"] is None

    def test_status_shape_and_budget_accounting(self):
        engine = SloEngine()
        store = TimeSeriesStore(resolution=60.0)
        gauges = availability_samples(total=4.0, down={1, 2})
        for i in range(4):
            ts = float((i + 1) * 60)
            store.ingest(view(ts, gauges=gauges(i)))
            engine.evaluate(store, ts)
        status = engine.status(store)
        avail = status["objectives"]["availability"]
        assert set(avail["windows"]) == {"fast", "slow"}
        budget = avail["budget"]
        # Two dark samples consumed bad-seconds from the budget.
        assert budget["consumed_bad_seconds"] > 0
        assert 0.0 <= budget["remaining_fraction"] < 1.0
        assert status["samples"] == 4
        for name in (
            "read-p99",
            "shed-rate",
            "repair-margin",
            "wan-read-rate",
            "at-risk-stripes",
        ):
            assert name in status["objectives"]
