"""RunManifest provenance and determinism tests."""

import json

from repro import __version__
from repro.obs import RunManifest


class TestCreation:
    def test_captures_environment(self):
        m = RunManifest.create("profile", seed=3, config={"samples": 100})
        assert m.command == "profile"
        assert m.seed == 3
        assert m.config == {"samples": 100}
        assert m.package_version == __version__
        assert m.cpu_count >= 1
        assert m.hostname
        assert m.wall_seconds is None

    def test_finish_stamps_wall_time(self):
        m = RunManifest.create("x").finish()
        assert m.wall_seconds is not None
        assert m.wall_seconds >= 0

    def test_config_values_coerced_to_jsonable(self):
        import numpy as np

        m = RunManifest.create(
            "x", config={"ks": (5, 6), "n": np.int64(4), "s": {2, 1}}
        )
        json.dumps(m.to_dict())  # must not raise
        assert m.config["ks"] == [5, 6]
        assert m.config["n"] == 4
        assert m.config["s"] == [1, 2]


class TestDeterminism:
    def test_fingerprint_stable_for_same_seed_and_config(self):
        a = RunManifest.create("profile", seed=7, config={"samples": 50})
        b = RunManifest.create("profile", seed=7, config={"samples": 50})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_differs_on_seed(self):
        a = RunManifest.create("profile", seed=7, config={})
        b = RunManifest.create("profile", seed=8, config={})
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_differs_on_config(self):
        a = RunManifest.create("profile", seed=7, config={"exact_upto": 6})
        b = RunManifest.create("profile", seed=7, config={"exact_upto": 4})
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_ignores_host_and_time(self):
        a = RunManifest.create("profile", seed=1, config={})
        b = a.finish()
        assert a.fingerprint() == b.fingerprint()


class TestRoundTrip:
    def test_json_round_trip(self):
        m = RunManifest.create("overhead", seed=2, config={"trials": 10})
        m2 = RunManifest.from_json(m.finish().to_json())
        assert m2.command == "overhead"
        assert m2.seed == 2
        assert m2.config == {"trials": 10}
        assert m2.fingerprint() == m.fingerprint()

    def test_save_load(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        m = RunManifest.create("certify", seed=0, config={"num_data": 48})
        m.finish().save(path)
        loaded = RunManifest.load(path)
        assert loaded.fingerprint() == m.fingerprint()
        assert loaded.wall_seconds is not None
