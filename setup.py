"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable builds; this
offline environment lacks it, so ``python setup.py develop`` provides the
equivalent editable install path.
"""

from setuptools import setup

setup()
