"""E4 — paper Figure 6 + Table 4: fixed-degree cascaded random graphs.

Regenerates the §4.3 cascade ablation: same level structure as Tornado
graphs but constant left degree (3, 4, 6).  Expected shape (paper):
degree 3's curve nearly matches the best Tornado graph (whose average
degree is ~3.6) but fails earlier in the worst case; degree 6 reaches
first failure 5 but transitions much earlier on average.

The timed kernel is construction + worst-case certification of a
degree-3 cascade.
"""

import pytest

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import ascii_curves, profile_summary_table
from repro.core import cascade_graph_from_degrees, first_failure

LABELS = [
    "Cascaded - Degree 6",
    "Cascaded - Degree 4",
    "Cascaded - Degree 3",
    "Tornado Graph 3",
]


@pytest.fixture(scope="module")
def e4_profiles(profile_of):
    return [profile_of(lbl) for lbl in LABELS]


def build_and_certify(seed: int):
    g = cascade_graph_from_degrees(48, 3, seed=seed)
    return first_failure(g, limit=4)


def test_e4_table4_and_figure6(benchmark, e4_profiles):
    benchmark(build_and_certify, 1)

    table = profile_summary_table(e4_profiles)
    figure = ascii_curves(e4_profiles, k_max=60)
    write_result(
        "e4_table4_fig6",
        "E4 (Table 4 / Fig. 6) - fixed-degree cascades vs Tornado\n"
        f"samples per point: {BENCH_SAMPLES}\n"
        "paper: deg6 5 / 80.39, deg4 4 / 76.60, deg3 4 / 74.00,\n"
        "Tornado 3 (best) 5 / 73.77\n\n"
        + table
        + "\n\n"
        + figure,
    )

    by_name = {p.system_name: p for p in e4_profiles}
    assert by_name["Cascaded - Degree 6"].first_failure() == 5
    assert by_name["Cascaded - Degree 4"].first_failure() == 4
    assert by_name["Cascaded - Degree 3"].first_failure() == 4
    assert by_name["Tornado Graph 3"].first_failure() == 5
    # Average ordering: deg6 > deg4 > deg3 ~ Tornado (paper's finding).
    avg = {k: p.average_nodes_capable() for k, p in by_name.items()}
    assert avg["Cascaded - Degree 6"] > avg["Cascaded - Degree 4"]
    assert avg["Cascaded - Degree 4"] > avg["Tornado Graph 3"]
    assert abs(avg["Cascaded - Degree 3"] - avg["Tornado Graph 3"]) < 3.0
