"""X9 — graph-size scaling: why the paper uses 96 nodes, and beyond.

§3 argues 96 nodes is "an appropriate lower bound for filesystem
construction purposes" and that "using fewer nodes is not feasible",
citing Plank's finding that LDPC codes behave worst between 10 and 100
nodes.  This experiment certifies graphs across stripe widths with the
full pipeline and measures what fault tolerance each size can reach:

* 32-node graphs cannot even pass the size-3 defect screen (hundreds of
  attempts all contain a <=3 critical set) and top out at first
  failure 3;
* 48-node graphs screen clean but resist adjustment beyond 4;
* 64-node and larger graphs reach the paper's certified first
  failure 5, with overhead improving as the graph grows.

The timed kernel is full certification (screen + adjust) at 96 nodes.

The second half (``test_x9_sparse_size_scaling``) extends the story
two orders of magnitude past the paper: CSR cascades from 2^14 up to
2^20 nodes decoded by the sparse word-packed engine, with bit-exact
parity against the bitset engine wherever both fit, a seeded Monte
Carlo sweep of the largest graph, and an aggregate multi-process
throughput measurement on the 96-node catalog graph.  Results land in
``benchmarks/results/BENCH_scaling.json``.

Scale knobs: ``REPRO_BENCH_SCALING_MAX_NODES`` (largest CSR graph,
default 2^20), ``REPRO_BENCH_SCALING_BATCH`` (cases per timed decode,
default 4096 — the sparse engine amortises its index work across
words, so tiny batches flatter the dense engine),
``REPRO_BENCH_SCALING_PARITY_MAX_NODES`` (largest size
cross-checked against bitset, default 2^16),
``REPRO_BENCH_SCALING_SWEEP_SAMPLES`` (samples per k in the big-graph
sweep, default 2048), ``REPRO_BENCH_SCALING_JOBS`` (aggregate worker
count, default cpu count) and ``REPRO_BENCH_SCALING_MIN_SPEEDUP``
(sparse-vs-bitset floor, default 1.0 — CI's no-slower bar).
"""

import os
import time

import numpy as np

from _bench_utils import merge_bench_json, write_result
from repro.analysis import format_table
from repro.core import (
    BitsetBatchDecoder,
    GenerationError,
    SparseBitsetDecoder,
    adjust_graph,
    analyze_worst_case,
    generate_certified,
    packed_sparse_loss_masks,
    tornado_csr_graph,
)
from repro.core.sparse import jit_enabled
from repro.graphs import tornado_catalog_graph
from repro.sim import measure_retrieval_overhead, profile_graph
from repro.sim.montecarlo import sample_fail_fraction

SIZES = (16, 24, 32, 48, 64)

MAX_NODES = int(
    os.environ.get("REPRO_BENCH_SCALING_MAX_NODES", str(1 << 20))
)
SCALING_BATCH = int(os.environ.get("REPRO_BENCH_SCALING_BATCH", "4096"))
PARITY_MAX_NODES = int(
    os.environ.get("REPRO_BENCH_SCALING_PARITY_MAX_NODES", str(1 << 16))
)
SWEEP_SAMPLES = int(
    os.environ.get("REPRO_BENCH_SCALING_SWEEP_SAMPLES", "2048")
)
SCALING_JOBS = int(
    os.environ.get("REPRO_BENCH_SCALING_JOBS", str(os.cpu_count() or 1))
)
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SCALING_MIN_SPEEDUP", "1.0")
)
AGG_SAMPLES = int(
    os.environ.get("REPRO_BENCH_SCALING_AGG_SAMPLES", str(1 << 18))
)
REPEATS = int(os.environ.get("REPRO_BENCH_SCALING_REPEATS", "2"))


def certify(num_data: int):
    try:
        report = generate_certified(num_data, seed=0, max_attempts=300)
        screen = 3
    except GenerationError:
        report = generate_certified(
            num_data, seed=0, defect_size=2, max_attempts=300
        )
        screen = 2
    adjusted = adjust_graph(report.graph, target_first_failure=5)
    return report, adjusted, screen


def test_x9_size_scaling(benchmark):
    benchmark(certify, 48)

    rows = []
    reached = {}
    for num_data in SIZES:
        report, adjusted, screen = certify(num_data)
        wc = analyze_worst_case(adjusted.graph, max_k=5)
        overhead = measure_retrieval_overhead(
            adjusted.graph, n_trials=600, seed=0
        )
        reached[num_data] = wc.first_failure
        rows.append(
            [
                f"{2 * num_data} nodes",
                f"<= {screen}",
                report.attempts,
                wc.first_failure,
                f"{overhead.mean_overhead:.3f}",
            ]
        )

    table = format_table(
        [
            "Graph size",
            "defect screen passed",
            "attempts",
            "first failure (adjusted)",
            "retrieval overhead",
        ],
        rows,
    )
    write_result(
        "x9_size_scaling",
        "X9 - certified fault tolerance vs stripe width\n"
        "(paper §3: 96 nodes is the feasible lower bound; Plank: LDPC\n"
        "worst between 10 and 100 nodes)\n\n" + table,
    )

    # The paper's feasibility claim, quantified:
    assert reached[16] <= 3  # 32-node graphs cannot reach 4
    assert reached[48] == 5
    assert reached[64] == 5
    assert reached[16] < reached[32] or reached[16] < reached[48]


# ----------------------------------------------------------------------
# Sparse engine scaling: 2^14 .. 2^20 nodes
# ----------------------------------------------------------------------


def _best_seconds(fn, *args):
    """Best-of-``REPEATS`` wall time of ``fn(*args)`` (returns t, out)."""
    out = fn(*args)  # warm-up: allocations, caches
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _scaling_sizes() -> list[int]:
    sizes, n = [], 1 << 14
    while n <= MAX_NODES:
        sizes.append(n)
        n <<= 1
    return sizes


def test_x9_sparse_size_scaling():
    """CSR cascades to 2^20 nodes: throughput, parity, sweep, aggregate."""
    per_size = []
    best_speedup = 0.0
    graphs = {}
    for num_nodes in _scaling_sizes():
        num_data = num_nodes // 2
        t0 = time.perf_counter()
        graph = tornado_csr_graph(num_data, seed=num_data)
        build_s = time.perf_counter() - t0
        assert graph.num_nodes == num_nodes
        graphs[num_nodes] = graph

        k = num_nodes // 10
        rng = np.random.default_rng(17)
        masks = packed_sparse_loss_masks(num_nodes, k, SCALING_BATCH, rng)
        sparse = SparseBitsetDecoder(graph)
        t_sp, ok_sp = _best_seconds(
            sparse.decode_packed, masks, SCALING_BATCH
        )
        entry = {
            "num_nodes": num_nodes,
            "num_constraints": int(graph.num_constraints),
            "edges": int(len(graph.con_nodes)),
            "k": k,
            "batch": SCALING_BATCH,
            "build_seconds": build_s,
            "fail_fraction": float(1.0 - ok_sp.mean()),
            "cases_per_sec": {"sparse": SCALING_BATCH / t_sp},
        }
        if num_nodes <= PARITY_MAX_NODES:
            # The dense engine still fits: demand bit-exact parity
            # before admitting either timing, then compare throughput.
            bitset = BitsetBatchDecoder(graph.to_graph())
            t_bit, ok_bit = _best_seconds(
                bitset.decode_packed, masks, SCALING_BATCH
            )
            assert np.array_equal(ok_sp, ok_bit), num_nodes
            entry["cases_per_sec"]["bitset"] = SCALING_BATCH / t_bit
            entry["speedup_sparse_vs_bitset"] = t_bit / t_sp
            best_speedup = max(best_speedup, t_bit / t_sp)
        per_size.append(entry)

    # CI bar: at >=2^14 nodes the sparse engine is no slower than the
    # dense bitset engine on the identical packed batch.
    assert any("speedup_sparse_vs_bitset" in e for e in per_size)
    assert best_speedup >= MIN_SPEEDUP, per_size

    # Seeded Monte Carlo sweep of the largest graph — the "million-node
    # sweep completes" datum.  CsrGraph skips the exact stage, so the
    # k-grid carries the whole sweep.
    big = graphs[max(graphs)]
    # 10%, 20% and 25% loss: the last sits at the cascade's peeling
    # transition, so the sweep exhibits the failure curve, not just
    # three zeros.
    ks = [big.num_nodes // 10, big.num_nodes // 5, big.num_nodes // 4]
    t0 = time.perf_counter()
    profile = profile_graph(
        big,
        samples_per_k=SWEEP_SAMPLES,
        ks=ks,
        seed=29,
        engine="sparse",
        n_jobs=SCALING_JOBS,
    )
    sweep_s = time.perf_counter() - t0
    assert all(profile.coverage[k] for k in ks)
    # 5% loss on a rate-1/2 cascade overwhelmingly decodes; 20% is a
    # graph-dependent mix.  Failure must not decrease with k.
    ff = [float(profile.fail_fraction[k]) for k in ks]
    assert ff[0] < 0.5
    assert ff == sorted(ff)
    sweep = {
        "num_nodes": big.num_nodes,
        "ks": ks,
        "samples_per_k": SWEEP_SAMPLES,
        "seconds": sweep_s,
        "fail_fraction": ff,
        "cases_per_sec": SWEEP_SAMPLES * len(ks) / sweep_s,
        "n_jobs": SCALING_JOBS,
    }

    # Aggregate multi-process throughput on the paper's 96-node catalog
    # graph: shm-parallel estimate must equal the serial one bit for
    # bit, and the recorded rate is the issue's headline number.
    catalog = tornado_catalog_graph(3)
    t0 = time.perf_counter()
    f_serial = sample_fail_fraction(
        catalog, 26, AGG_SAMPLES, rng=5, engine="bitset"
    )
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    f_par = sample_fail_fraction(
        catalog, 26, AGG_SAMPLES, rng=5, engine="bitset",
        n_jobs=SCALING_JOBS,
    )
    par_s = time.perf_counter() - t0
    assert f_serial == f_par
    aggregate = {
        "graph": "catalog-3 (96 nodes)",
        "k": 26,
        "samples": AGG_SAMPLES,
        "n_jobs": SCALING_JOBS,
        "serial_cases_per_sec": AGG_SAMPLES / serial_s,
        "aggregate_cases_per_sec": AGG_SAMPLES / par_s,
        "parallel_speedup": serial_s / par_s,
    }

    rows = [
        [
            f"2^{num_nodes.bit_length() - 1} nodes",
            f"{e['edges']:,}",
            f"{e['build_seconds']:.2f}s",
            f"{e['cases_per_sec']['sparse']:,.0f}",
            (
                f"{e['cases_per_sec']['bitset']:,.0f}"
                if "bitset" in e["cases_per_sec"]
                else "-"
            ),
            (
                f"{e['speedup_sparse_vs_bitset']:.2f}x"
                if "speedup_sparse_vs_bitset" in e
                else "-"
            ),
        ]
        for e in per_size
        for num_nodes in [e["num_nodes"]]
    ]
    table = format_table(
        [
            "Graph size",
            "edges",
            "build",
            "sparse cases/s",
            "bitset cases/s",
            "sparse/bitset",
        ],
        rows,
    )
    write_result(
        "x9_sparse_scaling",
        "X9b - sparse engine scaling, 2^14..2^20 nodes "
        f"(batch={SCALING_BATCH}, jit={jit_enabled()})\n\n"
        + table
        + "\n\n"
        + f"2^{big.num_nodes.bit_length() - 1}-node sweep: "
        + f"ks={ks}, {SWEEP_SAMPLES} samples/k in {sweep_s:.1f}s "
        + f"({sweep['cases_per_sec']:,.0f} cases/s), "
        + f"fail fractions {['%.3f' % f for f in ff]}\n"
        + f"aggregate (96-node catalog, n_jobs={SCALING_JOBS}): "
        + f"{aggregate['aggregate_cases_per_sec']:,.0f} cases/s "
        + f"({aggregate['parallel_speedup']:.2f}x serial)",
    )
    merge_bench_json(
        "BENCH_scaling.json",
        config={
            "scaling_batch": SCALING_BATCH,
            "scaling_max_nodes": MAX_NODES,
            "scaling_parity_max_nodes": PARITY_MAX_NODES,
            "scaling_sweep_samples": SWEEP_SAMPLES,
            "scaling_jobs": SCALING_JOBS,
            "jit_enabled": jit_enabled(),
        },
        results=[
            {
                "bench": "x9_sparse_scaling",
                "sizes": per_size,
                "sweep": sweep,
                "aggregate": aggregate,
            }
        ],
    )
