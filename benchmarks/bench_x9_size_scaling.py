"""X9 — graph-size scaling: why the paper uses 96 nodes.

§3 argues 96 nodes is "an appropriate lower bound for filesystem
construction purposes" and that "using fewer nodes is not feasible",
citing Plank's finding that LDPC codes behave worst between 10 and 100
nodes.  This experiment certifies graphs across stripe widths with the
full pipeline and measures what fault tolerance each size can reach:

* 32-node graphs cannot even pass the size-3 defect screen (hundreds of
  attempts all contain a <=3 critical set) and top out at first
  failure 3;
* 48-node graphs screen clean but resist adjustment beyond 4;
* 64-node and larger graphs reach the paper's certified first
  failure 5, with overhead improving as the graph grows.

The timed kernel is full certification (screen + adjust) at 96 nodes.
"""

from _bench_utils import write_result
from repro.analysis import format_table
from repro.core import (
    GenerationError,
    adjust_graph,
    analyze_worst_case,
    generate_certified,
)
from repro.sim import measure_retrieval_overhead

SIZES = (16, 24, 32, 48, 64)


def certify(num_data: int):
    try:
        report = generate_certified(num_data, seed=0, max_attempts=300)
        screen = 3
    except GenerationError:
        report = generate_certified(
            num_data, seed=0, defect_size=2, max_attempts=300
        )
        screen = 2
    adjusted = adjust_graph(report.graph, target_first_failure=5)
    return report, adjusted, screen


def test_x9_size_scaling(benchmark):
    benchmark(certify, 48)

    rows = []
    reached = {}
    for num_data in SIZES:
        report, adjusted, screen = certify(num_data)
        wc = analyze_worst_case(adjusted.graph, max_k=5)
        overhead = measure_retrieval_overhead(
            adjusted.graph, n_trials=600, seed=0
        )
        reached[num_data] = wc.first_failure
        rows.append(
            [
                f"{2 * num_data} nodes",
                f"<= {screen}",
                report.attempts,
                wc.first_failure,
                f"{overhead.mean_overhead:.3f}",
            ]
        )

    table = format_table(
        [
            "Graph size",
            "defect screen passed",
            "attempts",
            "first failure (adjusted)",
            "retrieval overhead",
        ],
        rows,
    )
    write_result(
        "x9_size_scaling",
        "X9 - certified fault tolerance vs stripe width\n"
        "(paper §3: 96 nodes is the feasible lower bound; Plank: LDPC\n"
        "worst between 10 and 100 nodes)\n\n" + table,
    )

    # The paper's feasibility claim, quantified:
    assert reached[16] <= 3  # 32-node graphs cannot reach 4
    assert reached[48] == 5
    assert reached[64] == 5
    assert reached[16] < reached[32] or reached[16] < reached[48]
