"""X2 — ablation: peeling decoder vs GF(2) maximum-likelihood decoding.

Tornado decoding is iterative peeling; a lost set can be linearly
determined yet peeling-stuck.  This ablation quantifies the gap on the
best catalog graph: failure fraction under both decoders across the
transition region.  Expected shape: ML strictly dominates, with the
largest gap in the middle of the transition — evidence for the paper's
implicit design point that graph quality (not decoder sophistication)
is where small-LDPC fault tolerance is won.
"""

import numpy as np
import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.core import BatchPeelingDecoder, MLDecoder

SAMPLES = 800
KS = (20, 26, 30, 34, 38, 42)


@pytest.fixture(scope="module")
def decoders(systems):
    g = systems["Tornado Graph 3"]
    return g, BatchPeelingDecoder(g), MLDecoder(g)


def test_x2_peeling_vs_ml(benchmark, decoders):
    graph, peel, ml = decoders
    rng = np.random.default_rng(0)

    benchmark(ml.is_recoverable, list(range(0, 30)))

    rows = []
    gaps = []
    for k in KS:
        masks = np.zeros((SAMPLES, graph.num_nodes), dtype=bool)
        for i in range(SAMPLES):
            masks[i, rng.choice(graph.num_nodes, k, replace=False)] = True
        peel_ok = peel.decode_batch(masks)
        ml_ok = np.array(
            [ml.is_recoverable(np.flatnonzero(m)) for m in masks]
        )
        # ML must dominate peeling case by case.
        assert (ml_ok | ~peel_ok).all() or (ml_ok >= peel_ok).all()
        peel_fail = 1.0 - peel_ok.mean()
        ml_fail = 1.0 - ml_ok.mean()
        gaps.append(peel_fail - ml_fail)
        rows.append(
            [k, f"{peel_fail:.3f}", f"{ml_fail:.3f}",
             f"{peel_fail - ml_fail:+.3f}"]
        )

    table = format_table(
        ["k offline", "peeling P(fail)", "ML P(fail)", "gap"], rows
    )
    write_result(
        "x2_peeling_vs_ml",
        "X2 - peeling vs maximum-likelihood decoding, Tornado Graph 3\n"
        f"{SAMPLES} samples per point\n\n" + table,
    )
    assert max(gaps) >= 0.0
    assert all(g >= -1e-9 for g in gaps)  # ML never loses
