"""E6 — paper Table 6: nodes for 50% reconstruction and overhead.

Regenerates the §5.2 reconstruction-efficiency analysis: the smallest
online-node count giving a 50% chance of immediate reconstruction, and
the implied overhead over the 48 data nodes.  Paper values: 62 / 62 / 61
nodes and overheads 1.29 / 1.29 / 1.27 for Tornado graphs 1-3.

The timed kernel is the metric extraction from a cached profile.
"""

import pytest

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import format_table

LABELS = ["Tornado Graph 1", "Tornado Graph 2", "Tornado Graph 3"]
PAPER = {"Tornado Graph 1": 62, "Tornado Graph 2": 62, "Tornado Graph 3": 61}


@pytest.fixture(scope="module")
def e6_profiles(profile_of):
    return [profile_of(lbl) for lbl in LABELS]


def test_e6_table6(benchmark, e6_profiles):
    benchmark(e6_profiles[0].nodes_for_success_probability, 0.5)

    rows = []
    for prof in e6_profiles:
        nodes = prof.nodes_for_success_probability(0.5)
        rows.append(
            [
                prof.system_name,
                nodes,
                f"{nodes / prof.num_data:.2f}",
                PAPER[prof.system_name],
                f"{PAPER[prof.system_name] / 48:.2f}",
            ]
        )
        # Paper band: 60-64 nodes, overhead ~1.25-1.33.
        assert 58 <= nodes <= 66
    table = format_table(
        ["System", "Nodes@50%", "Overhead", "paper nodes", "paper ovh"],
        rows,
    )
    write_result(
        "e6_table6",
        "E6 (Table 6) - nodes for 50% reconstruction probability\n"
        f"samples per point: {BENCH_SAMPLES}\n\n" + table,
    )
