"""X1 — Tornado vs Reed-Solomon codec throughput (Typhoon's claim).

The Typhoon work underlying the paper found Tornado Codes "encode and
decode files in substantially less time than Reed-Solomon codes".  This
bench measures both codecs at the paper's 48+48 configuration on 1 MiB
stripes.  Expected shape: Tornado encoding (XOR along ~300 sparse graph
edges) beats RS encoding (48x48 dense GF(256) table passes) by well
over an order of magnitude; decode similarly.
"""

import numpy as np
import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.core import TornadoCodec
from repro.graphs import tornado_catalog_graph
from repro.rs import ReedSolomonCodec

BLOCK = 16_384  # 48 data blocks x 16 KiB = 768 KiB per stripe
K = 48


@pytest.fixture(scope="module")
def payload(rng=np.random.default_rng(0)):
    return rng.integers(0, 256, (K, BLOCK), dtype=np.uint8)


@pytest.fixture(scope="module")
def tornado_codec():
    return TornadoCodec(tornado_catalog_graph(3), block_size=BLOCK)


@pytest.fixture(scope="module")
def rs_codec():
    return ReedSolomonCodec(k=K, m=K)


def test_x1_tornado_encode(benchmark, tornado_codec, payload):
    result = benchmark(tornado_codec.encode_blocks, payload)
    assert result.shape == (96, BLOCK)


def test_x1_rs_encode(benchmark, rs_codec, payload):
    result = benchmark(rs_codec.encode_blocks, payload)
    assert result.shape == (96, BLOCK)


def test_x1_decode_comparison(benchmark, tornado_codec, rs_codec, payload):
    rng = np.random.default_rng(1)
    t_blocks = tornado_codec.encode_blocks(payload)
    r_blocks = rs_codec.encode_blocks(payload)
    present = np.ones(96, dtype=bool)
    present[rng.choice(96, size=4, replace=False)] = False

    out = benchmark(tornado_codec.decode_blocks, t_blocks, present)
    np.testing.assert_array_equal(out, payload)

    import time

    t0 = time.perf_counter()
    rs_out = rs_codec.decode_blocks(r_blocks, present)
    rs_time = time.perf_counter() - t0
    np.testing.assert_array_equal(rs_out, payload)

    t0 = time.perf_counter()
    tornado_codec.decode_blocks(t_blocks, present)
    tornado_time = time.perf_counter() - t0

    mb = K * BLOCK / 1e6
    table = format_table(
        ["Codec", "decode time (4 erasures)", "MB/s"],
        [
            ["Tornado (graph 3)", f"{tornado_time * 1e3:.2f} ms",
             f"{mb / tornado_time:.0f}"],
            ["Reed-Solomon (48+48)", f"{rs_time * 1e3:.2f} ms",
             f"{mb / rs_time:.0f}"],
        ],
    )
    write_result(
        "x1_codec_throughput",
        "X1 - codec throughput at the 48+48 configuration "
        f"({mb:.1f} MB stripe)\n\n" + table
        + "\n\n(Typhoon's qualitative claim: Tornado >> Reed-Solomon)",
    )
    assert tornado_time < rs_time
