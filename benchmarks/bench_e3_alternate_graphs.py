"""E3 — paper Figure 5 + Table 3: regular and altered-Tornado graphs.

Regenerates the §4.3 comparison: regular single-stage graphs (degree 4
and 11) against altered Tornado distributions (doubled / shifted +1) and
the best catalog graph.  Expected shape: increasing connectivity raises
the first failure but pushes the average failure point *earlier* (a
check node is useful only when exactly one left neighbour is missing),
so the best Tornado graph has the lowest average-to-reconstruct.

The timed kernel is a full small-sample profile of the regular-4 graph.
"""

import pytest

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import ascii_curves, profile_summary_table
from repro.sim import profile_graph

LABELS = [
    "Regular - Degree 4",
    "Regular - Degree 11",
    "Altered Tornado (dist. doubled)",
    "Altered Tornado (dist. shifted)",
    "Tornado Graph 3",
]


@pytest.fixture(scope="module")
def e3_profiles(profile_of):
    return [profile_of(lbl) for lbl in LABELS]


def test_e3_table3_and_figure5(benchmark, e3_profiles, systems):
    benchmark(
        profile_graph, systems["Regular - Degree 4"], samples_per_k=150
    )

    table = profile_summary_table(e3_profiles)
    figure = ascii_curves(e3_profiles, k_max=60)
    write_result(
        "e3_table3_fig5",
        "E3 (Table 3 / Fig. 5) - Tornado vs regular/altered graphs\n"
        f"samples per point: {BENCH_SAMPLES}\n"
        "paper: Reg4 4 / 77.49, Reg11 4 / 78.61, doubled 5 / 77.41,\n"
        "shifted 5 / 75.58, Tornado 3 (best) 5 / 73.77\n\n"
        + table
        + "\n\n"
        + figure,
    )

    by_name = {p.system_name: p for p in e3_profiles}
    # Paper-shape assertions: altered variants reach first failure 5 but
    # transition later (higher average) than the tuned Tornado graph.
    assert by_name["Altered Tornado (dist. doubled)"].first_failure() == 5
    assert by_name["Altered Tornado (dist. shifted)"].first_failure() == 5
    assert by_name["Regular - Degree 4"].first_failure() == 4
    best = by_name["Tornado Graph 3"].average_nodes_capable()
    assert best < by_name["Regular - Degree 11"].average_nodes_capable()
    assert best < by_name[
        "Altered Tornado (dist. doubled)"
    ].average_nodes_capable()
