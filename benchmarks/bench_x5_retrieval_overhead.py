"""X5 — §5.2/§6: true retrieval overhead by incremental download.

Implements the measurement the paper explicitly defers: "start with a
certain number of online nodes and retrieve nodes until the graph can
be reconstructed".  Expected shape: mean peeling overhead ~1.29 for the
catalog graphs (consistent with Table 6's 50% threshold), with the ML
decoder floor near the literature's <1.2 values (Plank) — the gap is
the price of iterative decoding.

The timed kernel is one full incremental-retrieval trial sweep.
"""

import numpy as np
from _bench_utils import write_result
from repro.analysis import format_table
from repro.sim import measure_retrieval_overhead

TRIALS = 2_000
ML_TRIALS = 300


def test_x5_retrieval_overhead(benchmark, systems):
    graph3 = systems["Tornado Graph 3"]
    benchmark(
        measure_retrieval_overhead,
        graph3,
        200,
        np.random.default_rng(0),
    )

    rows = []
    for label in ("Tornado Graph 1", "Tornado Graph 2", "Tornado Graph 3"):
        graph = systems[label]
        peel = measure_retrieval_overhead(
            graph, n_trials=TRIALS, seed=0
        )
        ml = measure_retrieval_overhead(
            graph,
            n_trials=ML_TRIALS,
            seed=0,
            decoder="ml",
        )
        rows.append(
            [
                label,
                f"{peel.mean_downloads:.2f}",
                f"{peel.mean_overhead:.3f}",
                f"{peel.percentile(95):.0f}",
                f"{ml.mean_overhead:.3f}",
            ]
        )
        assert 1.2 <= peel.mean_overhead <= 1.4
        assert ml.mean_overhead <= peel.mean_overhead
        assert ml.mean_overhead >= 1.0

    table = format_table(
        [
            "System",
            "mean downloads",
            "peeling overhead",
            "p95 downloads",
            "ML overhead (floor)",
        ],
        rows,
    )
    write_result(
        "x5_retrieval_overhead",
        "X5 - incremental-retrieval overhead (blocks downloaded until\n"
        f"reconstruction, {TRIALS} random orders; ML floor over "
        f"{ML_TRIALS})\n\n" + table
        + "\n\nliterature (Plank et al.): LDPC overheads < 1.2 with ML-"
        "style accounting;\npaper Table 6 50%-threshold overhead: "
        "1.27-1.29",
    )
