"""X12 — serving throughput: micro-batched vs unbatched reconstruction.

The serving layer's claim (docs/SERVE.md): under a saturating open-loop
workload with a hot object set, micro-batching plus plan caching turns
redundant concurrent reconstructions into shared decodes, multiplying
throughput while *lowering* tail latency — the unbatched baseline pays
queueing delay for every redundant decode it performs.

Three campaigns over one seeded world (4 hot objects on a severity-12
catalog-3 archive, identical request streams):

* ``unbatched``  — zero window, no plan cache: every request plans and
  decodes alone (the pre-serve behaviour).
* ``batched``    — 5 ms window, plan-cached, coalescing up to 64
  requests per dispatch.
* ``crash``      — the batched configuration on a 2-process worker
  pool with a worker hard-killed mid-campaign: the service must
  degrade (crash counted, pool rebuilt, batch retried), not fail.

Latency percentiles are coordinated-omission corrected (measured from
each request's scheduled arrival), so the unbatched baseline's queueing
is visible rather than silently shed by a slowed generator.

Scale knobs: ``REPRO_BENCH_SERVE_REQUESTS`` (default 400) and
``REPRO_BENCH_SERVE_RATE`` (offered req/s, default 10000).

The timed kernel is a reduced micro-batched campaign; the full
comparison runs once and lands in ``benchmarks/results/BENCH_serve.json``.
"""

import asyncio
import json
import os

from _bench_utils import RESULTS_DIR, write_result
from repro.analysis import format_table
from repro.serve import (
    LoadGenConfig,
    ReconstructionService,
    ServeConfig,
    run_loadgen,
    seeded_archive,
)

REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "400"))
RATE = float(os.environ.get("REPRO_BENCH_SERVE_RATE", "10000"))

WORLD = dict(
    objects=4, object_size=393216, block_size=4096, severity=12, seed=11
)
WINDOW = 0.005
MAX_BATCH = 64


def _config(mode: str) -> ServeConfig:
    unbatched = mode == "unbatched"
    return ServeConfig(
        queue_limit=10_000,
        batch_window=0.0 if unbatched else WINDOW,
        max_batch=MAX_BATCH,
        workers=2 if mode == "crash" else 0,
        plan_capacity=0 if unbatched else 256,
    )


def _run(mode: str, requests: int = REQUESTS):
    archive, names = seeded_archive(**WORLD)
    load = LoadGenConfig(requests=requests, rate=RATE, seed=7)

    async def go():
        async with ReconstructionService(archive, _config(mode)) as svc:
            chaos = None
            if mode == "crash":
                async def kill_one_worker():
                    await asyncio.sleep(0.02)
                    svc.inject_worker_crash()

                chaos = asyncio.create_task(kill_one_worker())
            report = await run_loadgen(svc, names, load)
            if chaos is not None:
                await chaos
            return report, svc.stats()

    report, stats = asyncio.run(go())
    counters = stats["counters"]
    return {
        "report": report.to_dict(),
        "batches": counters.get("serve.batches", 0),
        "coalesced": counters.get("serve.coalesced", 0),
        "plan_cache_hits": counters.get("serve.plan_cache.hits", 0),
        "worker_crashes": counters.get("serve.worker_crashes", 0),
        "retries": counters.get("serve.retries", 0),
        "shed": counters.get("serve.shed", 0),
    }


def test_x12_serve_throughput(benchmark):
    benchmark(_run, "batched", min(100, REQUESTS))

    results = {mode: _run(mode) for mode in ("unbatched", "batched", "crash")}
    unb = results["unbatched"]["report"]
    bat = results["batched"]["report"]
    speedup = bat["throughput_rps"] / unb["throughput_rps"]

    rows = []
    for mode, res in results.items():
        rep = res["report"]
        lat = rep["latency"]
        rows.append(
            [
                mode,
                rep["completed"],
                f"{rep['throughput_rps']:.0f}",
                f"{lat.get('p50', 0) * 1e3:.1f}",
                f"{lat.get('p99', 0) * 1e3:.1f}",
                res["batches"],
                res["coalesced"],
                res["worker_crashes"],
            ]
        )
    table = format_table(
        [
            "mode",
            "completed",
            "req/s",
            "p50 ms",
            "p99 ms",
            "batches",
            "coalesced",
            "crashes",
        ],
        rows,
    )
    write_result(
        "x12_serve_throughput",
        f"X12 - reconstruction serving, {REQUESTS} requests offered at "
        f"{RATE:.0f} req/s\n(4 hot objects, severity 12, seed 11; "
        f"batched = {WINDOW * 1e3:.0f}ms window)\n\n"
        + table
        + f"\n\nmicro-batched speedup: {speedup:.2f}x",
    )

    payload = {
        "world": WORLD,
        "offered": {"requests": REQUESTS, "rate_rps": RATE, "seed": 7},
        "window_seconds": WINDOW,
        "max_batch": MAX_BATCH,
        "results": results,
        "speedup_batched_vs_unbatched": speedup,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Every offered request is accounted for in every campaign.
    for res in results.values():
        rep = res["report"]
        assert (
            rep["completed"] + rep["shed"] + rep["deadline_exceeded"]
            + rep["errors"]
            == REQUESTS
        )
        assert rep["errors"] == 0
    # The headline claim: batching multiplies throughput while cutting
    # the coordinated-omission-corrected tail.
    assert speedup >= 2.0
    assert bat["latency"]["p99"] <= unb["latency"]["p99"]
    assert results["batched"]["coalesced"] > 0
    assert results["batched"]["plan_cache_hits"] > 0
    # The crash drill degrades — a dead worker is counted and absorbed.
    crash = results["crash"]
    assert crash["worker_crashes"] >= 1
    assert crash["report"]["completed"] == REQUESTS
