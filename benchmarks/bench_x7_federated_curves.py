"""X7 — full fraction-failure curves for federated systems (Table 7+).

The paper reports only first failures for federated configurations;
this extension plots the complete curves using the combined-relation
batch decoder (site constraints + cross-site data-equality relations).
Expected shape: at matched total device counts the complementary-graph
federation's curve sits at or below the duplicated-graph curve, and
both transition far later than 4-copy mirroring.

The timed kernel is one batch decode over the 192-device federation.
"""

import numpy as np
import pytest

from _bench_utils import merge_bench_json, write_result
from repro.analysis import ascii_curves
from repro.federation import (
    FederatedSystem,
    federated_batch_decoder,
    federated_profile,
)
from repro.graphs import mirrored_graph, tornado_catalog_graph
from repro.sites import estimate_wan_read_cost

SAMPLES = 2_000
KS = list(range(4, 190, 6))
WAN_OBJECT_SIZE = 4096
WAN_SAMPLES = 400
WAN_KS = list(range(0, 97, 8))


@pytest.fixture(scope="module")
def federations():
    m = mirrored_graph(48)
    g1 = tornado_catalog_graph(1)
    g2 = tornado_catalog_graph(2)
    return {
        "Mirrored (4 copies)": FederatedSystem([m, m]),
        "Tornado 1 + Tornado 1": FederatedSystem([g1, g1]),
        "Tornado 1 + Tornado 2": FederatedSystem([g1, g2]),
    }


def test_x7_federated_curves(benchmark, federations):
    system = federations["Tornado 1 + Tornado 2"]
    decoder = federated_batch_decoder(system)
    rng = np.random.default_rng(0)
    masks = rng.random((2_000, 192)) < 0.4
    benchmark(decoder.decode_batch, masks)

    profiles = []
    for label, fed in federations.items():
        profiles.append(
            federated_profile(
                fed,
                samples_per_k=SAMPLES,
                seed=0,
                ks=KS,
                name=label,
            )
        )
    figure = ascii_curves(profiles, k_max=160)
    lines = [
        f"{p.system_name}: 50% point at "
        f"{p.nodes_for_success_probability(0.5)} of 192 online"
        for p in profiles
    ]
    write_result(
        "x7_federated_curves",
        "X7 - fraction-failure curves for two-site federations "
        f"({SAMPLES} samples per sampled k)\n\n"
        + figure
        + "\n\n"
        + "\n".join(lines),
    )

    by_name = {p.system_name: p for p in profiles}
    mirror = by_name["Mirrored (4 copies)"]
    dup = by_name["Tornado 1 + Tornado 1"]
    comp = by_name["Tornado 1 + Tornado 2"]
    # Tornado federations transition later (tolerate more losses at 50%)
    assert (
        dup.nodes_for_success_probability(0.5)
        <= mirror.nodes_for_success_probability(0.5)
    )
    # Complementary never does worse than duplicated in the bulk.
    mid = slice(40, 150)
    assert (
        comp.fail_fraction[mid] <= dup.fail_fraction[mid] + 0.05
    ).all()

    # Tracked JSON trajectory: the failure curves at the sampled ks,
    # plus expected WAN bytes per read down the gateway's ladder for
    # the complementary pairing (local / remote / coupled / lost).
    json_results = [
        {
            "bench": "x7_failure_curve",
            "system": p.system_name,
            "k": int(k),
            "fail_fraction": float(p.fail_fraction[k]),
        }
        for p in profiles
        for k in KS
    ]
    comp_system = federations["Tornado 1 + Tornado 2"]
    for k in WAN_KS:
        estimate = estimate_wan_read_cost(
            comp_system,
            k,
            object_size=WAN_OBJECT_SIZE,
            samples=WAN_SAMPLES,
            seed=0,
        )
        json_results.append(
            {
                "bench": "x7_wan_read_cost",
                "system": "Tornado 1 + Tornado 2",
                "k": k,
                "object_size": WAN_OBJECT_SIZE,
                "mean_wan_bytes": estimate.mean_wan_bytes,
                "path_fractions": estimate.path_fractions,
            }
        )
    merge_bench_json(
        "BENCH_federation.json",
        config={
            "x7_samples": SAMPLES,
            "x7_wan_samples": WAN_SAMPLES,
            "x7_wan_object_size": WAN_OBJECT_SIZE,
        },
        results=json_results,
    )
