"""E7 — paper Table 7: multi-graph federated storage first failures.

Regenerates the §5.3 two-site federation comparison: four-copy
mirroring fails at 4 lost devices; the same Tornado graph at both sites
at 10 (= 2x its critical set); complementary graphs detect first
failures far higher because each graph's critical sets strand different
data nodes and the block exchange covers the difference.

Absolute complementary values depend on the concrete graphs (paper:
17-19; this catalog: ~15+).  The required shape is
mirror << duplicated << complementary.

The timed kernel is one coupled two-site decode.
"""

import pytest

from _bench_utils import merge_bench_json, write_result
from repro.analysis import format_table
from repro.core.critical import first_failure
from repro.federation import FederatedSystem, federated_first_failure
from repro.graphs import mirrored_graph, tornado_catalog_graph

SITE_CAP = 8  # per-site critical-set enumeration bound


@pytest.fixture(scope="module")
def federations():
    m = mirrored_graph(48)
    g = {i: tornado_catalog_graph(i) for i in (1, 2, 3)}
    return [
        ("Mirrored (4 copies)", FederatedSystem([m, m]), 3),
        ("Tornado 1 + Tornado 1", FederatedSystem([g[1], g[1]]), 6),
        ("Tornado 1 + Tornado 2", FederatedSystem([g[1], g[2]]), SITE_CAP),
        ("Tornado 1 + Tornado 3", FederatedSystem([g[1], g[3]]), SITE_CAP),
        ("Tornado 2 + Tornado 3", FederatedSystem([g[2], g[3]]), SITE_CAP),
    ]


PAPER = {
    "Mirrored (4 copies)": "4",
    "Tornado 1 + Tornado 1": "10",
    "Tornado 1 + Tornado 2": "17",
    "Tornado 1 + Tornado 3": "17",
    "Tornado 2 + Tornado 3": "19",
}


def test_e7_table7(benchmark, federations):
    system = federations[2][1]
    benchmark(system.is_recoverable, list(range(0, 20)))

    rows = []
    detected = {}
    for label, system, cap in federations:
        hit = federated_first_failure(system, site_max_size=cap)
        detected[label] = hit[0] if hit else None
        shown = hit[0] if hit else f"> {2 * cap}"
        rows.append([label, shown, PAPER[label]])

    table = format_table(
        ["System", "First Failure Detected", "paper"], rows
    )
    write_result(
        "e7_table7",
        "E7 (Table 7) - federated two-site storage, 192 devices\n"
        f"per-site critical-set bound: {SITE_CAP}\n\n" + table,
    )

    # Tracked JSON trajectory: first failures by site count — the
    # single-graph critical sets next to every two-site pairing, so the
    # federation's lift over one site is a diffable number.
    json_results = [
        {
            "bench": "e7_first_failure",
            "site_count": 1,
            "system": f"Tornado {number}",
            "first_failure": first_failure(
                tornado_catalog_graph(number), limit=8
            ),
            "first_failure_floor": None,
        }
        for number in (1, 2, 3)
    ]
    for label, _system, cap in federations:
        value = detected[label]
        json_results.append(
            {
                "bench": "e7_first_failure",
                "site_count": 2,
                "system": label,
                "first_failure": value,
                # Undetected within the bound means the true first
                # failure exceeds every probed per-site split.
                "first_failure_floor": (
                    2 * cap + 1 if value is None else value
                ),
                "paper": PAPER[label],
            }
        )
    merge_bench_json(
        "BENCH_federation.json",
        config={"e7_site_cap": SITE_CAP},
        results=json_results,
    )

    assert detected["Mirrored (4 copies)"] == 4
    assert detected["Tornado 1 + Tornado 1"] == 10
    for label in (
        "Tornado 1 + Tornado 2",
        "Tornado 1 + Tornado 3",
        "Tornado 2 + Tornado 3",
    ):
        value = detected[label]
        assert value is None or value > 10
