"""E2 — paper Figure 4 + Table 2: adjusted vs unadjusted Tornado graphs.

Regenerates the §3.3 result: defect-screened graphs first fail at 4 lost
nodes; the feedback adjustment raises that to 5 while leaving only a
handful of failing 5-loss patterns (the paper's example: 14 out of
61,124,064; exact counts for our graphs are printed).

The timed kernel is the adjustment procedure itself — the paper's
"manual tweak", automated.
"""

import pytest

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import ascii_curves, format_table
from repro.core import adjust_graph, analyze_worst_case
from repro.graphs import tornado_catalog_graph


@pytest.fixture(scope="module")
def pairs():
    out = []
    for number in (1, 2, 3):
        out.append(
            (
                tornado_catalog_graph(number, adjusted=False),
                tornado_catalog_graph(number, adjusted=True),
            )
        )
    return out


def test_e2_table2_and_figure4(benchmark, pairs, cache, profile_of):
    unadjusted_1 = pairs[0][0]
    benchmark(adjust_graph, unadjusted_1, 5)

    rows = []
    profiles = []
    for number, (before, after) in enumerate(pairs, start=1):
        wc_before = analyze_worst_case(before, max_k=4)
        wc_after = analyze_worst_case(after, max_k=5)
        fails5, total5 = wc_after.failing_counts[5]
        rows.append(
            [
                f"Tornado Graph {number}",
                wc_before.first_failure,
                wc_after.first_failure,
                f"{fails5} / {total5:,}",
            ]
        )
        prof = cache.get(before, samples_per_k=BENCH_SAMPLES, seed=0)
        profiles.append(prof)
        profiles.append(profile_of(f"Tornado Graph {number}"))

        assert wc_before.first_failure == 4
        assert wc_after.first_failure == 5
        assert 0 < fails5 < 1000

    table = format_table(
        [
            "System",
            "First Failure (unadjusted)",
            "First Failure (adjusted)",
            "Failing 5-sets (exact)",
        ],
        rows,
    )
    figure = ascii_curves(profiles, k_max=60)
    write_result(
        "e2_table2_fig4",
        "E2 (Table 2 / Fig. 4) - feedback adjustment of Tornado graphs\n"
        "paper: defect detection gives first failure 4; adjustment gives "
        "5\nwith e.g. 14 failing cases of 61,124,064 at k=5\n\n"
        + table
        + "\n\n"
        + figure,
    )
