"""X8 — §2.1 future work: LEC-style automated graphs vs Tornado.

The paper defers evaluating Lincoln Erasure Codes but notes its
software "can utilize any LDPC graph".  This experiment plugs an
LEC-inspired family — single-stage irregular graphs chosen by automated
generate-and-evaluate — into the same analysis pipeline.

Findings this bench asserts: the single-stage family reaches first
failure 4 but (unlike cascaded Tornado graphs) does not adjust to 5 —
its critical-set family is too dense for single-edge rewiring — while
its single-level structure encodes faster than the cascade.  The
trade-off supports the paper's choice of certified cascaded graphs for
archival (worst case dominates reliability) while confirming LEC's
throughput angle.
"""

import numpy as np
import pytest

from _bench_utils import write_result
from repro.analysis import format_table, graph_stats
from repro.core import TornadoCodec, adjust_graph, analyze_worst_case
from repro.graphs import lec_like_graph

BLOCK = 8_192


@pytest.fixture(scope="module")
def contenders(systems):
    lec = lec_like_graph(48, seed=0, candidates=12)
    return lec, systems["Tornado Graph 3"]


def test_x8_lec_comparison(benchmark, contenders):
    lec, tornado = contenders
    benchmark(lec_like_graph, 48, seed=100, candidates=4)

    wc_lec = analyze_worst_case(lec.graph, max_k=5)
    wc_tor = analyze_worst_case(tornado, max_k=5)
    adj = adjust_graph(lec.graph, target_first_failure=5)

    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, (48, BLOCK), dtype=np.uint8)
    import time

    def encode_time(graph):
        codec = TornadoCodec(graph, block_size=BLOCK)
        t0 = time.perf_counter()
        for _ in range(20):
            codec.encode_blocks(data)
        return (time.perf_counter() - t0) / 20

    t_lec = encode_time(lec.graph)
    t_tor = encode_time(tornado)

    rows = [
        [
            "LEC-like (best of 12)",
            wc_lec.first_failure,
            len(wc_lec.minimal_sets),
            "no" if not adj.achieved_target else "yes",
            f"{t_lec * 1e3:.2f} ms",
        ],
        [
            "Tornado Graph 3",
            wc_tor.first_failure,
            len(wc_tor.minimal_sets),
            "yes (by construction)",
            f"{t_tor * 1e3:.2f} ms",
        ],
    ]
    table = format_table(
        [
            "Family",
            "First Failure",
            "critical sets <= 5",
            "adjustable to 5?",
            "encode (0.4 MB)",
        ],
        rows,
    )
    write_result(
        "x8_lec_comparison",
        "X8 - LEC-style automated single-stage graphs vs certified "
        "Tornado\n\n"
        + table
        + "\n\n"
        + graph_stats(lec.graph).describe()
        + "\n"
        + graph_stats(tornado).describe(),
    )

    assert wc_lec.first_failure == 4
    assert wc_tor.first_failure == 5
    assert not adj.achieved_target  # dense critical family resists rewiring
