"""V1 — paper §3: simulator verification against mirrored theory (Eq. 1).

The paper validates its sampling simulator by building a 96-node
mirrored system with the graph tools and checking sampled failure
fractions against the closed-form mirrored probability ("equal to the
theoretical values to at least 9 significant digits" with their 10M+
samples).  This bench replays that validation two ways:

* the exact path (critical-set counting) must match theory to machine
  precision, and
* the Monte Carlo path must converge within binomial error bars.

The timed kernel is one sampled mirrored cell.
"""

import numpy as np

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import format_table
from repro.graphs import mirrored_graph
from repro.raid import mirrored_system
from repro.sim import profile_graph, sample_fail_fraction

SAMPLES = max(BENCH_SAMPLES, 20_000)


def test_v1_mirror_simulator_verification(benchmark):
    graph = mirrored_graph(48)
    theory = mirrored_system(48).profile()
    rng = np.random.default_rng(0)
    benchmark(sample_fail_fraction, graph, 10, 2_000, rng)

    prof = profile_graph(graph, samples_per_k=SAMPLES, seed=1)
    rows = []
    worst_exact = 0.0
    worst_sampled = 0.0
    for k in (2, 4, 6, 10, 20, 30, 40, 48):
        sampled = prof.fail_fraction[k]
        exact = theory[k]
        err = abs(sampled - exact)
        if prof.samples[k] == 0:
            worst_exact = max(worst_exact, err)
        else:
            worst_sampled = max(worst_sampled, err)
        rows.append(
            [k, f"{exact:.9f}", f"{sampled:.9f}", f"{err:.2e}"]
        )
    table = format_table(
        ["k offline", "theory (Eq. 1)", "simulator", "abs err"], rows
    )
    write_result(
        "v1_mirror_verification",
        "V1 - simulator vs mirrored closed form (paper §3 validation)\n"
        f"samples per sampled point: {SAMPLES}\n\n"
        + table
        + f"\n\nexact-path worst error:   {worst_exact:.3e}"
        + f"\nsampled-path worst error: {worst_sampled:.3e}",
    )

    # Exact path: machine precision (the paper's "9 significant digits").
    assert worst_exact < 1e-12
    # Sampled path: within ~5 sigma binomial error at this sample count.
    assert worst_sampled < 5 * 0.5 / np.sqrt(SAMPLES)
