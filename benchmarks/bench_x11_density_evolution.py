"""X11 — asymptotic promise vs 96-node reality (Plank's critique).

Luby's density-evolution analysis promises recovery from any erasure
fraction below ``delta*`` for infinite graphs; Plank (whom the paper
builds on) showed realized small LDPC codes fall far short, doing worst
between 10 and 100 nodes.  This experiment computes both sides for the
catalog graphs:

* the asymptotic threshold of the design distribution (heavy-tail d=16
  with matched Poisson) and of each graph's *realized* level-0 degrees —
  both near 0.47, close to the rate-1/2 capacity of 0.5;
* the finite-graph transition (erasure fraction at the 50% point of the
  measured failure profile) — near 0.35.

The ~12-point gap *is* the finite-length penalty that motivates the
paper's empirical certification pipeline: asymptotics say nothing about
which 5 lost blocks kill a 96-node graph.

The timed kernel is one threshold computation.
"""

import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.core import realized_level_distributions, recovery_threshold
from repro.core.degree import (
    heavy_tail_distribution,
    poisson_distribution,
    solve_poisson_alpha,
)

LABELS = ["Tornado Graph 1", "Tornado Graph 2", "Tornado Graph 3"]


@pytest.fixture(scope="module")
def design_pair():
    lam = heavy_tail_distribution(16)
    avg_right = lam.average_node_degree() / 0.5
    alpha = solve_poisson_alpha(avg_right, 48)
    return lam, poisson_distribution(alpha, 48)


def test_x11_density_evolution(benchmark, design_pair, systems, profile_of):
    lam, rho = design_pair
    design_delta = benchmark(recovery_threshold, lam, rho)

    rows = []
    for label in LABELS:
        graph = systems[label]
        left, right = realized_level_distributions(graph, level=0)
        realized_delta = recovery_threshold(left, right)
        prof = profile_of(label)
        online_50 = prof.nodes_for_success_probability(0.5)
        finite_delta = (prof.num_devices - online_50) / prof.num_devices
        rows.append(
            [
                label,
                f"{realized_delta:.4f}",
                f"{finite_delta:.4f}",
                f"{realized_delta - finite_delta:+.3f}",
            ]
        )
        # The finite transition must sit well below the asymptotic
        # threshold — that gap is the paper's reason to exist.
        assert finite_delta < realized_delta - 0.05
        assert 0.4 < realized_delta < 0.5  # near rate-1/2 capacity

    table = format_table(
        [
            "System",
            "asymptotic delta* (realized level 0)",
            "finite 50% transition",
            "finite-length penalty",
        ],
        rows,
    )
    write_result(
        "x11_density_evolution",
        "X11 - density evolution vs 96-node measurement\n"
        f"design distribution threshold: {design_delta:.4f} "
        "(rate-1/2 capacity: 0.5)\n\n" + table,
    )