"""E5 — paper Table 5: theoretical probability of data loss at AFR 1%.

Combines each system's failure profile with the binomial device-failure
model (Eqs. 2-3).  Paper values: individual disk 0.01, striping 0.61895,
RAID5 0.04834, RAID6 0.00164, mirrored 0.00479, Tornado graphs
5.857e-10 .. 1.34e-9.  Exact analytic systems must match to ~1e-5;
Tornado values depend on the concrete graphs but must sit orders of
magnitude below mirroring.

The timed kernel is the Eq. 3 reliability combination.
"""

import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.raid import (
    mirrored_system,
    raid5_system,
    raid6_system,
    striped_system,
)
from repro.reliability import reliability_table, system_failure_probability
from repro.sim import FailureProfile

PAPER_VALUES = {
    "Striped": 0.61895,
    "RAID5 8x12": 0.04834,
    "RAID6 8x12": 0.00164,
    "Mirrored": 0.00479,
}


@pytest.fixture(scope="module")
def e5_profiles(profile_of):
    striped = FailureProfile.from_analytic(striped_system())
    return [
        FailureProfile(
            system_name="Striped",
            num_devices=striped.num_devices,
            num_data=striped.num_data,
            fail_fraction=striped.fail_fraction,
            samples=striped.samples,
        ),
        FailureProfile.from_analytic(raid5_system()),
        FailureProfile.from_analytic(raid6_system()),
        profile_of("Mirrored"),
        profile_of("Tornado Graph 1"),
        profile_of("Tornado Graph 2"),
        profile_of("Tornado Graph 3"),
    ]


def test_e5_table5(benchmark, e5_profiles):
    benchmark(system_failure_probability, e5_profiles[-1], 0.01)

    entries = reliability_table(e5_profiles, afr=0.01)
    rows = [
        [
            e.system_name,
            e.data_devices,
            e.parity_devices,
            f"{e.p_fail:.4g}",
            (
                f"{PAPER_VALUES[e.system_name]:.4g}"
                if e.system_name in PAPER_VALUES
                else "5.9e-10 .. 1.3e-9"
            ),
        ]
        for e in entries
    ]
    table = format_table(
        ["System", "Data", "Parity", "P(fail) measured", "paper"], rows
    )
    write_result(
        "e5_table5",
        "E5 (Table 5) - P(data loss), 96 disks, AFR 1%, no repair\n"
        "individual disk baseline: 0.01 by definition\n\n" + table,
    )

    by_name = {e.system_name: e for e in entries}
    for name, expect in PAPER_VALUES.items():
        assert by_name[name].p_fail == pytest.approx(expect, abs=5e-5)
    for n in (1, 2, 3):
        tornado = by_name[f"Tornado Graph {n}"].p_fail
        assert tornado < 1e-8
        assert by_name["Mirrored"].p_fail / tornado > 1e5
