"""X3 — ablation: structural defect detection on vs off.

The paper: "the worst initial prototype graphs without any form of
defect detection failed at two nodes, but the introduction of defect
detection increased the first failure for new graphs to four nodes."
This ablation regenerates that finding as a first-failure histogram of
raw random Tornado graphs versus defect-screened ones.

The timed kernel is one certified generation (construction + screen).
"""

from collections import Counter

from _bench_utils import write_result
from repro.analysis import format_table
from repro.core import first_failure, generate_certified, tornado_graph

RAW_GRAPHS = 40


def test_x3_defect_screen_ablation(benchmark):
    benchmark(generate_certified, 48, seed=32)

    raw_ff = Counter()
    for seed in range(RAW_GRAPHS):
        g = tornado_graph(48, seed=seed)
        raw_ff[first_failure(g, limit=4) or ">4"] += 1

    screened_ff = Counter()
    seed = 0
    for _ in range(10):
        report = generate_certified(48, seed=seed)
        screened_ff[first_failure(report.graph, limit=4) or ">4"] += 1
        seed = report.seed_used + 1

    def hist_rows(counter, total):
        return [
            [k, v, f"{v / total:.0%}"]
            for k, v in sorted(
                counter.items(), key=lambda kv: str(kv[0])
            )
        ]

    text = (
        "X3 - defect-detection ablation (first failure of new graphs)\n\n"
        f"raw random Tornado graphs (n={RAW_GRAPHS}):\n"
        + format_table(
            ["first failure", "graphs", "share"],
            hist_rows(raw_ff, RAW_GRAPHS),
        )
        + "\n\ndefect-screened graphs (n=10):\n"
        + format_table(
            ["first failure", "graphs", "share"],
            hist_rows(screened_ff, 10),
        )
        + "\n\npaper: raw graphs fail as early as 2; screened graphs at 4"
    )
    write_result("x3_defect_ablation", text)

    # Shape: raw population contains graphs failing at 2 or 3; screened
    # population contains none below 4.
    assert any(
        isinstance(k, int) and k <= 3 for k in raw_ff
    ), f"raw histogram {raw_ff}"
    assert all(
        (not isinstance(k, int)) or k >= 4 for k in screened_ff
    ), f"screened histogram {screened_ff}"
