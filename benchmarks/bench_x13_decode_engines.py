"""X13 — decode engine throughput: scalar vs matmul vs bitset.

The Monte Carlo hot path is millions of independent "is this erasure
pattern recoverable?" decodes.  Three engines answer that question:

* ``scalar`` — :class:`repro.core.PeelingDecoder`, one case at a time
  (the reference implementation; timed on a small sample).
* ``matmul`` — :class:`repro.core.BatchPeelingDecoder`, float32
  membership @ unknown-matrix products (the previous hot path).
* ``bitset`` — :class:`repro.core.BitsetBatchDecoder`, 64 cases packed
  per uint64 word, peeled with bitwise ops (the current default).

Each engine decodes the *same* pre-generated erasure masks, so the
timings isolate the decode kernel (mask generation is common work and
its packed variant replays the identical RNG stream anyway).  The
bench asserts case-for-case agreement before trusting any timing, then
requires the bitset engine to beat matmul by
``REPRO_BENCH_DECODE_MIN_SPEEDUP`` (default 5x — the acceptance bar on
the paper's 96-node catalog graph; CI's reduced config relaxes it to
1x, i.e. merely no-slower).

Scale knobs: ``REPRO_BENCH_DECODE_BATCH`` (cases per timed decode,
default 8192), ``REPRO_BENCH_DECODE_SCALAR`` (scalar sample size,
default 512), ``REPRO_BENCH_DECODE_REPEATS`` (best-of repeats,
default 3).

Results land in ``benchmarks/results/BENCH_decode.json``.
"""

import json
import os
import time

import numpy as np

from _bench_utils import RESULTS_DIR, write_result
from repro.analysis import format_table
from repro.core import (
    BatchPeelingDecoder,
    BitsetBatchDecoder,
    PeelingDecoder,
    pack_cases,
    tornado_graph,
)
from repro.graphs import tornado_catalog_graph
from repro.sim.montecarlo import _random_loss_masks

BATCH = int(os.environ.get("REPRO_BENCH_DECODE_BATCH", "8192"))
SCALAR_CASES = int(os.environ.get("REPRO_BENCH_DECODE_SCALAR", "512"))
REPEATS = int(os.environ.get("REPRO_BENCH_DECODE_REPEATS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_DECODE_MIN_SPEEDUP", "5.0"))

# The 96-node acceptance graph at the ks named by the issue (below,
# inside, and above the failure transition), plus a 128-node cascade
# with the same ks scaled by 128/96 to show the gap is not a
# size-96 artifact.
GRAPHS = (
    ("catalog-3 (96 nodes)", lambda: tornado_catalog_graph(3), (10, 26, 42)),
    (
        "tornado-n64 (128 nodes)",
        lambda: tornado_graph(64, seed=1, min_final_lefts=32),
        (13, 35, 56),
    ),
)


def _best_seconds(fn, *args):
    """Best-of-``REPEATS`` wall time of ``fn(*args)`` (returns t, out)."""
    out = fn(*args)  # warm-up: allocations, caches
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _measure(graph, k, rng):
    masks = _random_loss_masks(graph.num_nodes, k, BATCH, rng)
    packed = pack_cases(masks)
    scalar = PeelingDecoder(graph)
    matmul = BatchPeelingDecoder(graph)
    bitset = BitsetBatchDecoder(graph)

    t_mat, ok_mat = _best_seconds(matmul.decode_batch, masks)
    t_bit, ok_bit = _best_seconds(bitset.decode_packed, packed, BATCH)

    sub = masks[:SCALAR_CASES]

    def scalar_sweep():
        return np.array(
            [scalar.is_recoverable(np.flatnonzero(m)) for m in sub]
        )

    t_sca, ok_sca = _best_seconds(scalar_sweep)

    # No timing is admissible unless every engine agrees case for case.
    assert np.array_equal(ok_mat, ok_bit), (graph.name, k)
    assert np.array_equal(ok_sca, ok_mat[:SCALAR_CASES]), (graph.name, k)

    return {
        "k": k,
        "fail_fraction": float(1.0 - ok_mat.mean()),
        "cases_per_sec": {
            "scalar": SCALAR_CASES / t_sca,
            "matmul": BATCH / t_mat,
            "bitset": BATCH / t_bit,
        },
        "speedup_bitset_vs_matmul": t_mat / t_bit,
        "speedup_bitset_vs_scalar": (BATCH / t_bit) / (SCALAR_CASES / t_sca),
    }


def test_x13_decode_engines(benchmark):
    graph3 = tornado_catalog_graph(3)
    warm = _random_loss_masks(
        graph3.num_nodes, 26, min(1024, BATCH), np.random.default_rng(0)
    )
    bit3 = BitsetBatchDecoder(graph3)
    benchmark(bit3.decode_packed, pack_cases(warm), warm.shape[0])

    results = []
    rows = []
    for label, make, ks in GRAPHS:
        graph = make()
        rng = np.random.default_rng(42)
        for k in ks:
            m = _measure(graph, k, rng)
            cps = m["cases_per_sec"]
            results.append({"graph": label, "num_nodes": graph.num_nodes, **m})
            rows.append(
                [
                    label,
                    k,
                    f"{cps['scalar']:,.0f}",
                    f"{cps['matmul']:,.0f}",
                    f"{cps['bitset']:,.0f}",
                    f"{m['speedup_bitset_vs_matmul']:.1f}x",
                ]
            )

    table = format_table(
        ["graph", "k offline", "scalar c/s", "matmul c/s", "bitset c/s",
         "bitset/matmul"],
        rows,
    )
    write_result(
        "x13_decode_engines",
        f"X13 - decode engine throughput, batch={BATCH}, "
        f"best of {REPEATS} (scalar sampled at {SCALAR_CASES} cases)\n\n"
        + table,
    )

    payload = {
        "config": {
            "batch": BATCH,
            "scalar_cases": SCALAR_CASES,
            "repeats": REPEATS,
            "min_speedup": MIN_SPEEDUP,
        },
        "results": results,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_decode.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Acceptance: on the 96-node catalog graph the bitset engine beats
    # matmul by MIN_SPEEDUP at every probed k (5x at full scale; CI's
    # reduced batch only requires parity).
    for res in results:
        if res["num_nodes"] == 96:
            assert res["speedup_bitset_vs_matmul"] >= MIN_SPEEDUP, res
        # Everywhere, batched engines must crush the scalar loop.
        assert res["speedup_bitset_vs_scalar"] > 1.0, res
