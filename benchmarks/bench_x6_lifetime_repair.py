"""X6 — reliability with repair in the loop (Table 5 extension).

Table 5 assumes a repair-free year.  This experiment runs the
discrete-event lifetime simulator — Poisson device failures,
exponential repairs — over the same five organisations.  Rates are
elevated (AFR 30%, MTTR ~5 weeks) so Monte Carlo resolves losses for
the weak systems within the bench budget; what must reproduce is the
*ordering*, which matches Table 5: striping < RAID5 < mirrored ~ RAID6
<< Tornado (no losses observed at rates that destroy every RAID
variant).  Closed-form Markov MTTDL values are printed for the systems
that have them.

The timed kernel is one simulated mission of the Tornado system.
"""

import numpy as np
from _bench_utils import write_result
from repro.analysis import format_table
from repro.reliability import (
    LifetimeConfig,
    failure_predicate_for_graph,
    failure_predicate_for_groups,
    mttdl_mirrored,
    mttdl_raid,
    simulate_lifetime,
)

AFR = 0.30
MTTR = 0.10  # years
RUNS = 250
MISSION = 10.0


def test_x6_lifetime_with_repair(benchmark, systems):
    tornado_pred = failure_predicate_for_graph(systems["Tornado Graph 3"])
    cfg = LifetimeConfig(
        num_devices=96, afr=AFR, mttr_years=MTTR, mission_years=MISSION
    )
    benchmark(
        simulate_lifetime,
        tornado_pred,
        cfg,
        20,
        np.random.default_rng(0),
    )

    cases = [
        ("Striped", failure_predicate_for_groups(96, 1, 0), None),
        (
            "RAID5 8x12",
            failure_predicate_for_groups(8, 12, 1),
            mttdl_raid(8, 12, AFR, MTTR, tolerance=1),
        ),
        (
            "RAID6 8x12",
            failure_predicate_for_groups(8, 12, 2),
            mttdl_raid(8, 12, AFR, MTTR, tolerance=2),
        ),
        (
            "Mirrored 48x2",
            failure_predicate_for_groups(48, 2, 1),
            mttdl_mirrored(48, AFR, MTTR),
        ),
        ("Tornado Graph 3", tornado_pred, None),
    ]

    rows = []
    p_loss = {}
    for label, pred, analytic in cases:
        result = simulate_lifetime(
            pred, cfg, n_runs=RUNS, rng=np.random.default_rng(7)
        )
        p_loss[label] = result.p_loss
        est = result.mttdl_estimate()
        rows.append(
            [
                label,
                f"{result.p_loss:.3f}",
                f"{est:.2f} yr" if est else f"> {MISSION:g} yr (0 losses)",
                f"{analytic:.2f} yr" if analytic else "-",
            ]
        )

    table = format_table(
        [
            "System",
            f"P(loss in {MISSION:g} yr)",
            "simulated MTTDL",
            "Markov MTTDL",
        ],
        rows,
    )
    write_result(
        "x6_lifetime_repair",
        "X6 - lifetime simulation with repair "
        f"(AFR {AFR:.0%}, MTTR {MTTR:g} yr, {RUNS} missions)\n\n"
        + table
        + "\n\nordering must match Table 5; Tornado records zero losses"
        "\nat stress rates that destroy every RAID organisation",
    )

    assert p_loss["Striped"] == 1.0
    assert p_loss["RAID5 8x12"] >= p_loss["RAID6 8x12"]
    assert p_loss["Tornado Graph 3"] <= min(
        p_loss["Mirrored 48x2"], p_loss["RAID6 8x12"]
    )
    assert p_loss["Tornado Graph 3"] < 0.05
