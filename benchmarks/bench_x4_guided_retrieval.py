"""X4 — paper §6 future work: guided retrieval on a MAID shelf.

Compares retrieval planners by devices touched (= spin-ups on an idle
MAID array) across damage levels on the best catalog graph.  Expected
shape: naive all-available retrieval touches ~all devices; data-first
touches 48 plus several checks under damage; guided one-step-lookahead
search stays at ~the information-theoretic minimum of 48.

The timed kernel is one guided plan under damage.
"""

import numpy as np
import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.storage import (
    MAIDPowerModel,
    plan_all,
    plan_data_first,
    plan_guided,
    rotated_placement,
)

TRIALS = 12
DAMAGE = (0, 4, 8, 16)


@pytest.fixture(scope="module")
def setting(systems):
    graph = systems["Tornado Graph 3"]
    return graph, rotated_placement(graph, 96, 0)


def test_x4_guided_retrieval(benchmark, setting):
    graph, placement = setting
    rng = np.random.default_rng(0)
    avail = np.ones(96, dtype=bool)
    avail[rng.choice(96, 8, replace=False)] = False
    benchmark(plan_guided, graph, placement, avail)

    model = MAIDPowerModel()
    rows = []
    means = {}
    for lost in DAMAGE:
        sums = {p.__name__: [] for p in (plan_all, plan_data_first, plan_guided)}
        for t in range(TRIALS):
            trial_rng = np.random.default_rng(100 + t)
            avail = np.ones(96, dtype=bool)
            if lost:
                avail[trial_rng.choice(96, lost, replace=False)] = False
            for planner in (plan_all, plan_data_first, plan_guided):
                plan = planner(graph, placement, avail)
                assert plan.decodable
                sums[planner.__name__].append(plan.device_count)
        row = [lost]
        for planner in (plan_all, plan_data_first, plan_guided):
            mean = float(np.mean(sums[planner.__name__]))
            means[(lost, planner.__name__)] = mean
            energy = model.session_energy(
                int(round(mean)), int(round(mean)), 60.0, 96
            )
            row.append(f"{mean:.1f} ({energy / 1e3:.0f} kJ)")
        rows.append(row)

    table = format_table(
        ["devices lost", "all-available", "data-first", "guided"], rows
    )
    write_result(
        "x4_guided_retrieval",
        "X4 - devices touched per stripe retrieval (mean over "
        f"{TRIALS} damage patterns; session energy at 60 s)\n\n" + table,
    )

    for lost in DAMAGE:
        assert (
            means[(lost, "plan_guided")]
            <= means[(lost, "plan_data_first")] + 1e-9
        )
        assert (
            means[(lost, "plan_data_first")]
            < means[(lost, "plan_all")]
        )
    assert means[(8, "plan_guided")] <= 52  # near the 48 floor
