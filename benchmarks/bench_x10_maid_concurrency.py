"""X10 — MAID-scale concurrent stripe access (paper §3 motivation).

§3: "in a MAID system with 2000 disks, this allows several stripes to
be accessed concurrently while limiting the number of drives online to
a small percentage."  This experiment places many 96-node stripes by
rotation across a 2000-device pool and measures the fraction of the
shelf that must spin up to serve N concurrent whole-stripe retrievals
under each planner.

Expected shape: guided retrieval keeps the spinning fraction near
``48 * N / 2000`` (the data-only floor) while naive retrieval burns
~2x that; independent rotated placements keep per-retrieval sets
mostly disjoint until the pool saturates.

The timed kernel is planning one concurrent batch of retrievals.
"""

import numpy as np
import pytest

from _bench_utils import write_result
from repro.analysis import format_table
from repro.storage import (
    plan_all,
    plan_data_first,
    plan_guided,
    rotated_placement,
)

POOL = 2_000
CONCURRENCY = (1, 4, 8, 16)


@pytest.fixture(scope="module")
def placements(systems):
    graph = systems["Tornado Graph 3"]
    return graph, [
        rotated_placement(graph, POOL, stripe_index=i) for i in range(64)
    ]


def plan_batch(graph, placements, planner, avail, count, rng):
    chosen = rng.choice(len(placements), size=count, replace=False)
    touched: set[int] = set()
    for idx in chosen:
        plan = planner(graph, placements[idx], avail)
        assert plan.decodable
        touched.update(plan.devices)
    return touched


def test_x10_maid_concurrency(benchmark, placements):
    graph, maps = placements
    avail = np.ones(POOL, dtype=bool)
    rng = np.random.default_rng(0)
    benchmark(
        plan_batch, graph, maps, plan_data_first, avail, 4,
        np.random.default_rng(1),
    )

    rows = []
    fractions = {}
    for count in CONCURRENCY:
        row = [count]
        for planner in (plan_all, plan_data_first, plan_guided):
            touched = plan_batch(
                graph, maps, planner, avail, count,
                np.random.default_rng(42),
            )
            frac = len(touched) / POOL
            fractions[(count, planner.__name__)] = frac
            row.append(f"{len(touched)} ({frac:.1%})")
        rows.append(row)

    table = format_table(
        [
            "concurrent retrievals",
            "all-available",
            "data-first",
            "guided",
        ],
        rows,
    )
    write_result(
        "x10_maid_concurrency",
        f"X10 - drives spinning on a {POOL}-disk MAID shelf to serve\n"
        "concurrent whole-stripe retrievals (healthy shelf)\n\n" + table,
    )

    for count in CONCURRENCY:
        guided = fractions[(count, "plan_guided")]
        naive = fractions[(count, "plan_all")]
        # Guided stays near the data floor; the advantage narrows as
        # rotated placements start overlapping at high concurrency.
        assert guided <= naive / 1.6
        assert guided <= (48 * count) / POOL + 0.01
    # Even 16 concurrent retrievals keep <40% of the shelf spinning.
    assert fractions[(16, "plan_guided")] < 0.4