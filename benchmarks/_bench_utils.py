"""Helpers shared by the experiment benches (importable module form)."""

from __future__ import annotations

import json
import os
from pathlib import Path

BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "4000"))
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered experiment artifact (and echo it)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to benchmarks/results/{name}.txt]")


def merge_bench_json(
    filename: str, *, config: dict, results: list[dict]
) -> None:
    """Merge one bench's section into a shared ``BENCH_*.json``.

    Several benches contribute to the same tracked trajectory file
    (e.g. e7 and x7 both feed ``BENCH_federation.json``), so each
    entry carries a ``bench`` tag and a rerun replaces exactly its own
    prior entries.  The file keeps the ``{"config", "results"}`` shape
    of ``BENCH_decode.json``/``BENCH_serve.json``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    payload: dict = {"config": {}, "results": []}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload["config"].update(config)
    replaced = {entry.get("bench") for entry in results}
    payload["results"] = [
        entry
        for entry in payload.get("results", [])
        if entry.get("bench") not in replaced
    ] + results
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[merged {len(results)} entries into benchmarks/results/{filename}]")
