"""Helpers shared by the experiment benches (importable module form)."""

from __future__ import annotations

import os
from pathlib import Path

BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "4000"))
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered experiment artifact (and echo it)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to benchmarks/results/{name}.txt]")
