"""Shared fixtures for the experiment benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
expensive shared input — Monte Carlo failure profiles of the twelve
96-node systems — is simulated once per configuration and cached as
JSON under ``benchmarks/data`` (see :mod:`repro.analysis.cache`).

Fidelity is controlled by ``REPRO_BENCH_SAMPLES`` (samples per offline
count; default 4000 keeps the whole suite to a few minutes; the paper
used ~10-34 million per point over 34 CPU-days).  Rendered tables are
written to ``benchmarks/results/`` so they survive pytest's output
capture and can be diffed against EXPERIMENTS.md.

Every bench runs under a scoped :mod:`repro.obs` metrics registry; the
per-bench snapshots (decode throughput counters, cache hits, search
timings) are collected into ``benchmarks/results/metrics_summary.json``
at session end so the ``BENCH_*.json`` trajectories gain that context.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import default_cache
from repro.graphs import catalog_96_node_systems
from repro.obs import MetricsRegistry, capture
from repro.sim import FailureProfile

from _bench_utils import BENCH_SAMPLES, RESULTS_DIR

_METRICS_BY_BENCH: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _bench_metrics(request):
    """Collect instrumentation for each bench into the session summary."""
    with capture(MetricsRegistry()) as reg:
        yield
    snap = reg.snapshot()
    if snap["counters"] or snap["gauges"] or snap["histograms"]:
        _METRICS_BY_BENCH[request.node.nodeid] = snap


def pytest_sessionfinish(session, exitstatus):
    if not _METRICS_BY_BENCH:
        return
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "metrics_summary.json"
    out.write_text(
        json.dumps(_METRICS_BY_BENCH, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session")
def cache():
    return default_cache()


@pytest.fixture(scope="session")
def systems():
    """The twelve 96-node graphs of the paper's comparisons."""
    return catalog_96_node_systems()


@pytest.fixture(scope="session")
def profile_of(cache, systems):
    """Callable returning the cached failure profile of a catalog system."""

    def get(label: str, samples: int = BENCH_SAMPLES) -> FailureProfile:
        graph = systems[label]
        prof = cache.get(graph, samples_per_k=samples, seed=0)
        # Carry the catalog label (graph names differ, e.g. seeds).
        return FailureProfile(
            system_name=label,
            num_devices=prof.num_devices,
            num_data=prof.num_data,
            fail_fraction=prof.fail_fraction,
            samples=prof.samples,
        )

    return get
