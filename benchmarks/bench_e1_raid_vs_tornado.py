"""E1 — paper Figure 3 + Table 1: RAID and best Tornado Code graphs.

Regenerates the fraction-failure curves and the first-failure /
average-to-reconstruct table for mirroring, striping, RAID5, RAID6 and
Tornado graphs 1-3 on a 96-device system.  Expected shape: mirrored
fails first at 2 and striping at 1, RAID5 at 2, RAID6 at 3, Tornado at
5; Tornado's curve sits left of (better than) mirroring everywhere.

The timed kernel is the Monte Carlo estimator for one (graph, k) cell —
the unit the paper spent 34 CPU-days on per graph.
"""

import numpy as np
import pytest

from _bench_utils import BENCH_SAMPLES, write_result
from repro.analysis import ascii_curves, profile_summary_table
from repro.raid import raid5_system, raid6_system
from repro.sim import FailureProfile, sample_fail_fraction

TORNADO_LABELS = ["Tornado Graph 1", "Tornado Graph 2", "Tornado Graph 3"]


@pytest.fixture(scope="module")
def e1_profiles(profile_of):
    profs = [profile_of("Mirrored"), profile_of("Striped")]
    profs.append(FailureProfile.from_analytic(raid5_system()))
    profs.append(FailureProfile.from_analytic(raid6_system()))
    profs.extend(profile_of(lbl) for lbl in TORNADO_LABELS)
    return profs


def test_e1_table1_and_figure3(benchmark, e1_profiles, systems):
    graph = systems["Tornado Graph 3"]
    rng = np.random.default_rng(1)
    benchmark(sample_fail_fraction, graph, 20, 2_000, rng)

    table = profile_summary_table(e1_profiles)
    figure = ascii_curves(e1_profiles, k_max=60)
    write_result(
        "e1_table1_fig3",
        "E1 (Table 1 / Fig. 3) - 96-device RAID vs Tornado\n"
        f"samples per point: {BENCH_SAMPLES} (paper: 10-34 million)\n\n"
        + table
        + "\n\n"
        + figure,
    )

    by_name = {p.system_name: p for p in e1_profiles}
    assert by_name["Striped"].first_failure() == 1
    assert by_name["Mirrored"].first_failure() == 2
    assert by_name["RAID5 8x12"].first_failure() == 2
    assert by_name["RAID6 8x12"].first_failure() == 3
    for lbl in TORNADO_LABELS:
        assert by_name[lbl].first_failure() == 5
    # Tornado's average failure transition sits below mirroring's.
    assert (
        by_name["Tornado Graph 3"].average_nodes_capable()
        < by_name["Mirrored"].average_nodes_capable()
    )
