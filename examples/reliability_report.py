#!/usr/bin/env python3
"""Reliability comparison across storage organisations (paper Table 5).

Computes the annual probability of data loss for every 96-disk system
the paper compares — striping, RAID5, RAID6, mirroring, and the three
catalog Tornado graphs — at the paper's 1% device AFR, plus an AFR
sensitivity sweep.

Run:  python examples/reliability_report.py [samples_per_k]
"""

import sys

from repro.analysis import format_table
from repro.graphs import tornado_catalog_graph
from repro.raid import (
    mirrored_system,
    raid5_system,
    raid6_system,
    striped_system,
)
from repro.reliability import (
    afr_sweep,
    reliability_table,
    system_failure_probability,
)
from repro.sim import FailureProfile, profile_graph

samples = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000

profiles = [
    FailureProfile.from_analytic(s)
    for s in (striped_system(), raid5_system(), raid6_system(),
              mirrored_system())
]
for i in (1, 2, 3):
    g = tornado_catalog_graph(i)
    print(f"profiling {g.name} ({samples} samples per offline count)...")
    profiles.append(profile_graph(g, samples_per_k=samples, seed=0))

print("\nTable 5 — P(data loss) for 96-disk systems, AFR = 1%, no repair")
rows = [
    [e.system_name, e.data_devices, e.parity_devices, f"{e.p_fail:.3e}"]
    for e in reliability_table(profiles)
]
print(format_table(["System", "Data", "Parity", "P(fail)"], rows))

print("\npaper values: striping 0.61895, RAID5 0.04834, RAID6 0.00164,")
print("mirrored 0.00479, Tornado graphs 5.9e-10 .. 1.3e-9")

print("\nAFR sensitivity (best Tornado graph vs mirroring):")
tornado_prof = profiles[-1]
mirror_prof = profiles[3]
rows = []
for afr, p_tornado in afr_sweep(tornado_prof, [0.005, 0.01, 0.02, 0.05]):
    p_mirror = system_failure_probability(mirror_prof, afr)
    rows.append(
        [f"{afr:.1%}", f"{p_mirror:.3e}", f"{p_tornado:.3e}",
         f"{p_mirror / p_tornado:.1e}x"]
    )
print(format_table(
    ["AFR", "Mirrored", "Tornado 3", "improvement"], rows
))
