#!/usr/bin/env python3
"""Multi-year archival mission with proactive repair (paper §6).

Runs the end-to-end prototype the paper proposes: an archive of objects
on a 96-device Tornado-coded array, stochastic device failures over
five years, replacement hardware arriving after a procurement lag, and
the stripe monitor reconstructing missing blocks *before* any stripe
approaches the first-failure boundary.

Run:  python examples/archival_mission.py [afr_percent]
"""

import sys

import numpy as np

from repro.graphs import tornado_catalog_graph
from repro.storage import (
    DeviceArray,
    MissionConfig,
    TornadoArchive,
    run_mission,
)

afr = (float(sys.argv[1]) / 100.0) if len(sys.argv) > 1 else 0.08

graph = tornado_catalog_graph(3)
archive = TornadoArchive(graph, DeviceArray(96), block_size=1024)
rng = np.random.default_rng(42)
for i in range(4):
    payload = bytes(rng.integers(0, 256, 60_000, dtype=np.uint8))
    archive.put(f"collection-{i}", payload)
print(f"archived 4 objects "
      f"({sum(m.size for m in archive.objects.values()):,} bytes) on "
      f"96 devices under {graph.name}")

config = MissionConfig(
    years=5.0,
    afr=afr,
    replacement_lag_steps=2,  # two weeks to replace a drive
    repair_margin=2,          # repair once a stripe can absorb <= 2 more
)
print(f"running a {config.years:g}-year mission at AFR {afr:.0%} "
      f"(weekly steps)...\n")

report = run_mission(archive, config, np.random.default_rng(7))
print(report.describe())

print("\nfirst 12 events:")
for event in report.events[:12]:
    print(f"  week {event.step:>3}: {event.kind:<12} {event.detail}")

if report.survived:
    # prove the data is genuinely intact, not just not-flagged
    sample = archive.get("collection-0")
    print(f"\nverified: collection-0 retrieved intact "
          f"({len(sample):,} bytes)")
