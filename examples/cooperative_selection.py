#!/usr/bin/env python3
"""Cooperatively selecting Tornado graphs for a federation (abstract/§5.3).

The paper's abstract: "a geographically distributed data stewarding
system can be enhanced by using cooperatively selected Tornado Code
graphs to obtain fault tolerance exceeding that of its constituent
storage sites".  This example runs that selection: given the catalog's
three certified graphs, rank every two-site pairing by detected joint
first failure and deploy the winner.

Run:  python examples/cooperative_selection.py
"""

from repro.federation import select_complementary_pair
from repro.graphs import tornado_catalog_graph

pool = [tornado_catalog_graph(i) for i in (1, 2, 3)]
print("candidate pool:", ", ".join(g.name for g in pool))
print("evaluating all pairings (seeded critical-set search, cap 7)...\n")

report = select_complementary_pair(
    pool, site_max_size=7, curve_samples=500, allow_duplicates=True
)
print(report.describe())

best = report.best
print(
    f"\ndeploy: site A <- {best.graph_a}, site B <- {best.graph_b}"
)
print("every single-site graph fails at 5 lost devices; duplicated")
print("pairings fail at 10; the selected complementary pairing's first")
print("failure was not even detectable within the search bound —")
print("the paper's Table 7 found the same ordering (its best pair: 19).")
