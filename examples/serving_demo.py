#!/usr/bin/env python3
"""Serving reconstructions under load (docs/SERVE.md).

An archival store is not just a decoder — it answers retrieval traffic.
This demo runs the asyncio reconstruction service against a seeded,
damaged archive and walks its operational behaviours:

1. micro-batching: concurrent requests for hot objects coalesce into
   shared decodes with cached peeling plans;
2. backpressure: a tiny admission queue sheds a burst *visibly*
   (``ServiceOverloadedError``), never silently;
3. crash tolerance: a decode pool worker is hard-killed mid-campaign
   and the service rebuilds the pool and keeps serving.

Run:  python examples/serving_demo.py
"""

import asyncio

from repro.serve import (
    LoadGenConfig,
    ReconstructionService,
    ServeConfig,
    ServiceOverloadedError,
    run_loadgen,
    seeded_archive,
)

archive, names = seeded_archive(objects=4, severity=4, seed=7)
print(
    f"seeded archive: {len(names)} objects on {archive.graph.name}, "
    f"4 devices failed\n"
)


async def batching_demo() -> None:
    print("-- micro-batching: 32 concurrent requests, 4 hot objects")
    config = ServeConfig(batch_window=0.005, max_batch=64)
    async with ReconstructionService(archive, config) as service:
        payloads = await asyncio.gather(
            *(service.submit(names[i % len(names)]) for i in range(32))
        )
        counters = service.stats()["counters"]
        print(f"   {len(payloads)} requests served intact")
        print(
            f"   batches {counters['serve.batches']}, "
            f"coalesced {counters.get('serve.coalesced', 0)}, "
            f"plan-cache hits {counters.get('serve.plan_cache.hits', 0)}"
        )


async def backpressure_demo() -> None:
    print("\n-- backpressure: queue_limit=4 under a burst of 16")
    config = ServeConfig(batch_window=0.005, queue_limit=4)
    async with ReconstructionService(archive, config) as service:
        admitted, shed = [], 0
        for i in range(16):
            try:
                admitted.append(service.try_submit(names[i % len(names)]))
            except ServiceOverloadedError:
                shed += 1
        await asyncio.gather(*admitted)
        print(
            f"   admitted {len(admitted)}, shed {shed} "
            "(every shed is an explicit error + counter, not a drop)"
        )


async def crash_demo() -> None:
    print("\n-- crash drill: 2-process decode pool, one worker killed")
    config = ServeConfig(batch_window=0.002, workers=2, worker_retries=2)
    async with ReconstructionService(archive, config) as service:
        await service.submit(names[0])  # warm the pool
        service.inject_worker_crash()
        report = await run_loadgen(
            service, names, LoadGenConfig(requests=60, rate=3000.0, seed=1)
        )
        counters = service.stats()["counters"]
        print(f"   {report.describe()}")
        print(
            f"   worker crashes absorbed: "
            f"{counters.get('serve.worker_crashes', 0)} "
            "(pool rebuilt, batches retried)"
        )


async def main() -> None:
    await batching_demo()
    await backpressure_demo()
    await crash_demo()


if __name__ == "__main__":
    asyncio.run(main())
