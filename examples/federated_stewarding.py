#!/usr/bin/env python3
"""Federated data stewarding with complementary Tornado graphs (§5.3).

Simulates the paper's two-site digital-library scenario: both sites
replicate the same 48 data blocks, each protected by a *different*
certified Tornado graph.  The demo shows the three regimes of Table 7:

* a loss pattern that kills site 1 alone is absorbed by site 2;
* losing the same critical set at both sites of a *duplicated*-graph
  federation destroys data at 10 devices;
* with complementary graphs, the detected first failure is far higher —
  the sites' critical sets cover different data nodes, and the
  block-exchange protocol converts that diversity into fault tolerance.

Run:  python examples/federated_stewarding.py
"""

from repro.core import PeelingDecoder, analyze_worst_case
from repro.federation import FederatedSystem, federated_first_failure
from repro.graphs import mirrored_graph, tornado_catalog_graph

g1 = tornado_catalog_graph(1)
g2 = tornado_catalog_graph(2)

# -- regime 1: cross-site rescue ------------------------------------------
critical_g1 = sorted(next(iter(analyze_worst_case(g1, max_k=5).minimal_sets)))
print(f"site 1 critical set: {critical_g1}")
print(f"  site 1 alone recovers? "
      f"{PeelingDecoder(g1).is_recoverable(critical_g1)}")

fed = FederatedSystem([g1, g2])
result = fed.decode(critical_g1)  # devices 0..95 are site 1
print(f"  federated recovery:   {result.success} "
      f"(site recoveries per round: {result.recovered_per_site})")

# -- regime 2 + 3: first-failure comparison (paper Table 7) ---------------
print("\ndetected first failure (devices lost across both sites):")
m = mirrored_graph(48)
rows = [
    ("Mirrored (4 copies)", FederatedSystem([m, m]), 3),
    ("Tornado 1 + Tornado 1", FederatedSystem([g1, g1]), 6),
    ("Tornado 1 + Tornado 2", FederatedSystem([g1, g2]), 8),
]
for label, system, cap in rows:
    hit = federated_first_failure(system, site_max_size=cap)
    shown = hit[0] if hit else f"> {2 * cap}"
    print(f"  {label:<24} {shown}")

print("\npaper Table 7: mirrored=4, duplicated=10, complementary=17-19")
print("(absolute complementary values depend on the concrete graphs; the")
print(" ordering mirror << duplicated << complementary is the result)")
