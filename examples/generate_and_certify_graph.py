#!/usr/bin/env python3
"""Produce a new certified Tornado Code graph (the paper's §3 pipeline).

Walks the whole graph-production workflow the paper describes:

1. random construction from Luby's heavy-tail distribution;
2. structural defect screening (discard graphs failing at <= 3 losses);
3. exact worst-case analysis via critical-set search — showing the
   failure sets the way the paper's §3.2 excerpts do;
4. feedback adjustment: rewire edges until first failure reaches 5;
5. export to GraphML for the storage system to use.

Run:  python examples/generate_and_certify_graph.py [seed]
"""

import sys
import time

from repro.core import (
    adjust_graph,
    analyze_worst_case,
    generate_certified,
    render_failure,
    save_graphml,
)

seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2006

# -- 1+2. construct with defect screening -------------------------------
t0 = time.perf_counter()
report = generate_certified(48, seed=seed)
print(f"seed {seed}: accepted seed {report.seed_used} after "
      f"{report.attempts} attempts "
      f"({len(report.rejected_seeds)} rejected for structural defects)")
graph = report.graph

# -- 3. worst-case analysis ---------------------------------------------
wc = analyze_worst_case(graph, max_k=4)
print(f"\npre-adjustment worst case: first failure at "
      f"{wc.first_failure} lost nodes")
for s in wc.minimal_sets:
    print(f"  critical set {sorted(s)}")
    # Paper-style rendering of what the failure looks like:
    print("   ", render_failure(graph, s).replace("\n", "\n    "))

# -- 4. feedback adjustment ---------------------------------------------
adj = adjust_graph(graph, target_first_failure=5)
print(f"\nadjustment: {'reached' if adj.achieved_target else 'missed'} "
      f"first failure 5 in {len(adj.steps)} rewirings")
for step in adj.steps:
    print(f"  moved left {step.target_left}: check {step.old_check} -> "
          f"{step.new_check}  (critical sets {step.sets_before} -> "
          f"{step.sets_after})")

wc2 = analyze_worst_case(adj.graph, max_k=5)
fails5, total5 = wc2.failing_counts[5]
print(f"\npost-adjustment: first failure {wc2.first_failure}; "
      f"{fails5} failing cases out of {total5:,} five-loss patterns")
print(f"(the paper's best graph: 14 out of 61,124,064)")

# -- 5. export ------------------------------------------------------------
out = f"certified-tornado-seed{report.seed_used}.graphml"
save_graphml(adj.graph, out)
print(f"\nelapsed {time.perf_counter() - t0:.1f}s; graph written to {out}")
print("the paper's equivalent search took 21 CPU-hours per graph")
