#!/usr/bin/env python3
"""MAID archival storage: power-aware retrieval planning (§2.2, §6).

A massive array of idle disks keeps everything spun down; retrieving a
stripe costs one spin-up per device touched.  Because a Tornado-coded
stripe is reconstructible from many different subsets, the retrieval
planner can choose *which* devices to wake.  This demo compares the
three planners in repro.storage.retrieval on a damaged 96-device MAID
shelf and prices them with the power model.

Run:  python examples/maid_archive.py
"""

import numpy as np

from repro.graphs import tornado_catalog_graph
from repro.storage import (
    DeviceArray,
    MAIDPowerModel,
    SessionMeter,
    plan_all,
    plan_data_first,
    plan_guided,
    rotated_placement,
)

rng = np.random.default_rng(7)
graph = tornado_catalog_graph(3)
model = MAIDPowerModel()

devices = DeviceArray(96)
devices.spin_down_all()  # MAID idle state
placement = rotated_placement(graph, 96, 0)

print(f"96-device MAID shelf, all spun down; graph {graph.name}\n")

for lost_count in (0, 4, 12):
    # fresh shelf per scenario
    devices = DeviceArray(96)
    lost = (
        devices.fail_random(lost_count, rng) if lost_count else []
    )
    devices.spin_down_all()
    avail = devices.available_mask
    print(f"--- {lost_count} failed devices {lost or ''}")
    for planner in (plan_all, plan_data_first, plan_guided):
        plan = planner(graph, placement, avail)
        meter = SessionMeter(devices, model)
        meter.touch_all(plan.devices)
        report = meter.report(plan.strategy, session_seconds=60.0)
        status = "ok" if plan.decodable else "UNRECOVERABLE"
        print(f"  {report}  [{status}]")
    print()

print("guided retrieval touches the information-theoretic minimum of")
print("devices, which is what makes Tornado-coded MAID 'highly reliable")
print("and power efficient' (paper §2.2)")
