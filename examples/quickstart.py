#!/usr/bin/env python3
"""Quickstart: archive an object on 96 Tornado-coded devices and survive
four simultaneous drive failures.

This walks the paper's headline scenario end to end:

1. take a precompiled, certified Tornado Code graph (first failure 5 —
   any four simultaneous device losses are survivable);
2. store an object on a simulated 96-device array;
3. fail four random devices;
4. read the object back intact;
5. show the worst-case analysis that justifies step 4.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import analyze_worst_case
from repro.graphs import tornado_catalog_graph
from repro.storage import DeviceArray, TornadoArchive

rng = np.random.default_rng(2026)

# 1. A certified graph from the catalog (generated + defect-screened +
#    feedback-adjusted, exactly the paper's §3 pipeline).
graph = tornado_catalog_graph(3)
print(f"graph: {graph.name} — {graph.num_nodes} nodes, "
      f"{graph.num_data} data + {graph.num_checks} parity")

# 2. Store an object.
devices = DeviceArray(96)
archive = TornadoArchive(graph, devices, block_size=4096)
payload = b"irreplaceable observational dataset " * 10_000
archive.put("dataset-v1", payload)
print(f"stored {len(payload):,} bytes in "
      f"{len(archive.objects['dataset-v1'].stripes)} stripes")

# 3. Fail any four devices.  RAID10 at the same 50% overhead can lose
#    data with just two failures; this graph provably cannot below five.
failed = devices.fail_random(4, rng)
print(f"failed devices: {failed}")

# 4. Retrieve: reconstruction happens transparently during get().
recovered = archive.get("dataset-v1")
assert recovered == payload
print("object retrieved intact despite 4 failed devices")

# 5. Why that was guaranteed: worst-case analysis of the graph.
report = analyze_worst_case(graph, max_k=5)
print(f"\nworst-case analysis of {graph.name}:")
print(report.describe())
